package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
)

// testNet bundles a scheduler, path and connection pair with data sinks.
type testNet struct {
	sched  *simtime.Scheduler
	path   *netsim.Path
	pair   *Pair
	toSrv  bytes.Buffer // bytes the server received
	toCli  bytes.Buffer // bytes the client received
	srvEOF bool
	cliEOF bool
}

func newTestNet(t *testing.T, link netsim.LinkConfig, cfg Config) *testNet {
	t.Helper()
	n := &testNet{sched: simtime.NewScheduler()}
	rng := simtime.NewRand(42)
	var err error
	n.path, err = netsim.NewPath(n.sched, rng, netsim.PathConfig{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	n.pair, err = NewPair(n.sched, rng, n.path, cfg)
	if err != nil {
		t.Fatal(err)
	}
	n.pair.Server.OnData(func(p []byte) { n.toSrv.Write(p) })
	n.pair.Client.OnData(func(p []byte) { n.toCli.Write(p) })
	n.pair.Server.OnEOF(func() { n.srvEOF = true })
	n.pair.Client.OnEOF(func() { n.cliEOF = true })
	return n
}

func fastLink() netsim.LinkConfig {
	return netsim.LinkConfig{BandwidthBps: 1e9, PropDelay: 5 * time.Millisecond}
}

func TestHandshake(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	n.sched.Run()
	if got := n.pair.Client.State(); got != StateEstablished {
		t.Fatalf("client state = %v", got)
	}
	if got := n.pair.Server.State(); got != StateEstablished {
		t.Fatalf("server state = %v", got)
	}
	// Client's first RTT sample comes from the handshake-adjacent data;
	// at minimum the pre-handshake RTO must not have fired.
	if n.pair.Client.Err() != nil || n.pair.Server.Err() != nil {
		t.Fatalf("errors: %v / %v", n.pair.Client.Err(), n.pair.Server.Err())
	}
}

func TestSimpleTransferBothWays(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	req := bytes.Repeat([]byte("GET /index.html\n"), 4)
	resp := bytes.Repeat([]byte("x"), 100_000)
	n.sched.After(0, func() {
		if err := n.pair.Client.Write(req); err != nil {
			t.Errorf("client write: %v", err)
		}
	})
	n.sched.After(20*time.Millisecond, func() {
		if err := n.pair.Server.Write(resp); err != nil {
			t.Errorf("server write: %v", err)
		}
	})
	n.sched.Run()
	if !bytes.Equal(n.toSrv.Bytes(), req) {
		t.Fatalf("server received %d bytes, want %d", n.toSrv.Len(), len(req))
	}
	if !bytes.Equal(n.toCli.Bytes(), resp) {
		t.Fatalf("client received %d bytes, want %d", n.toCli.Len(), len(resp))
	}
	if n.pair.Server.Stats().Retransmits() != 0 {
		t.Fatalf("unexpected retransmits on clean link: %+v", n.pair.Server.Stats())
	}
}

func TestWriteBeforeEstablishedIsBuffered(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	// Write immediately, while the handshake is still in flight.
	if err := n.pair.Client.Write([]byte("early")); err != nil {
		t.Fatal(err)
	}
	n.sched.Run()
	if n.toSrv.String() != "early" {
		t.Fatalf("server got %q", n.toSrv.String())
	}
}

func TestLargeTransferSegmentation(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{MSS: 1000})
	n.pair.Open()
	data := make([]byte, 1_000_000)
	for i := range data {
		data[i] = byte(i * 31)
	}
	n.sched.After(0, func() { _ = n.pair.Server.Write(data) })
	n.sched.Run()
	if !bytes.Equal(n.toCli.Bytes(), data) {
		t.Fatalf("corrupted transfer: got %d bytes", n.toCli.Len())
	}
	st := n.pair.Server.Stats()
	if st.SegmentsSent < 1000 {
		t.Fatalf("sent %d segments for 1MB at MSS 1000", st.SegmentsSent)
	}
}

func TestSlowStartGrowth(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	n.sched.After(0, func() { _ = n.pair.Server.Write(make([]byte, 500_000)) })
	n.sched.Run()
	srv := n.pair.Server
	if srv.Cwnd() <= srv.Config().InitCwndSegs*srv.Config().MSS {
		t.Fatalf("cwnd did not grow: %d", srv.Cwnd())
	}
}

func TestRandomLossRecovery(t *testing.T) {
	link := fastLink()
	link.LossProb = 0.02
	n := newTestNet(t, link, Config{})
	n.pair.Open()
	data := make([]byte, 400_000)
	for i := range data {
		data[i] = byte(i)
	}
	n.sched.After(0, func() { _ = n.pair.Server.Write(data) })
	n.sched.Run()
	if !bytes.Equal(n.toCli.Bytes(), data) {
		t.Fatalf("transfer under loss corrupted: got %d/%d bytes", n.toCli.Len(), len(data))
	}
	if n.pair.Server.Stats().Retransmits() == 0 {
		t.Fatal("expected retransmissions under 2% loss")
	}
}

func TestFastRetransmitOnReorder(t *testing.T) {
	// Delay exactly one data packet so it arrives well after its
	// successors: receiver dup-ACKs, sender fast-retransmits.
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(7)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: fastLink()})
	if err != nil {
		t.Fatal(err)
	}
	var delayed bool
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		if !delayed && len(seg.Payload) > 0 && !seg.Retransmit && seg.Seq > 0 && now > 20*time.Millisecond {
			delayed = true
			return netsim.Verdict{ExtraDelay: 100 * time.Millisecond}
		}
		return netsim.Verdict{}
	}))
	pair, err := NewPair(sched, rng, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	pair.Client.OnData(func(p []byte) { got.Write(p) })
	pair.Open()
	data := make([]byte, 300_000)
	sched.After(0, func() { _ = pair.Server.Write(data) })
	sched.Run()
	if got.Len() != len(data) {
		t.Fatalf("received %d bytes, want %d", got.Len(), len(data))
	}
	if pair.Server.Stats().FastRetransmits == 0 {
		t.Fatalf("expected a fast retransmit; stats=%+v", pair.Server.Stats())
	}
	if pair.Client.Stats().DupAcksSent < 3 {
		t.Fatalf("expected ≥3 dup-ACKs, got %d", pair.Client.Stats().DupAcksSent)
	}
}

func TestRTORecoveryOnBurstLoss(t *testing.T) {
	// Drop all server data packets for a window, forcing an RTO (not just
	// fast retransmit).
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(3)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: fastLink()})
	if err != nil {
		t.Fatal(err)
	}
	dropUntil := 100 * time.Millisecond
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		return netsim.Verdict{Drop: len(seg.Payload) > 0 && now > 15*time.Millisecond && now < dropUntil}
	}))
	pair, err := NewPair(sched, rng, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	pair.Client.OnData(func(p []byte) { got.Write(p) })
	pair.Open()
	data := make([]byte, 200_000)
	sched.After(0, func() { _ = pair.Server.Write(data) })
	sched.Run()
	if got.Len() != len(data) {
		t.Fatalf("received %d bytes, want %d", got.Len(), len(data))
	}
	st := pair.Server.Stats()
	if st.RTOExpiries == 0 {
		t.Fatalf("expected an RTO expiry; stats=%+v", st)
	}
	if pair.Server.Err() != nil {
		t.Fatalf("connection should have recovered: %v", pair.Server.Err())
	}
}

func TestBrokenAfterMaxRetries(t *testing.T) {
	// Kill the server→client direction entirely mid-transfer.
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(3)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: fastLink()})
	if err != nil {
		t.Fatal(err)
	}
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		return netsim.Verdict{Drop: now > 15*time.Millisecond}
	}))
	pair, err := NewPair(sched, rng, path, Config{MaxRetries: 3})
	if err != nil {
		t.Fatal(err)
	}
	var states []State
	pair.Server.OnStateChange(func(s State) { states = append(states, s) })
	pair.Open()
	sched.After(0, func() { _ = pair.Server.Write(make([]byte, 100_000)) })
	sched.RunUntil(5 * time.Minute)
	if pair.Server.State() != StateBroken {
		t.Fatalf("server state = %v, want broken", pair.Server.State())
	}
	if pair.Server.Err() == nil {
		t.Fatal("broken connection must carry an error")
	}
	if len(states) == 0 || states[len(states)-1] != StateBroken {
		t.Fatalf("state transitions = %v", states)
	}
}

func TestRTOBackoffDoubles(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(3)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: fastLink()})
	if err != nil {
		t.Fatal(err)
	}
	// Black-hole data after handshake.
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		return netsim.Verdict{Drop: len(seg.Payload) > 0}
	}))
	pair, err := NewPair(sched, rng, path, Config{MaxRetries: 4, MinRTO: 200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	pair.Open()
	sched.After(0, func() { _ = pair.Server.Write(make([]byte, 5000)) })
	sched.RunUntil(time.Minute)
	st := pair.Server.Stats()
	if st.RTOExpiries != 5 { // MaxRetries+1: the last one declares failure
		t.Fatalf("RTO expiries = %d, want 5", st.RTOExpiries)
	}
	if pair.Server.State() != StateBroken {
		t.Fatalf("state = %v, want broken", pair.Server.State())
	}
	if pair.Server.RTO() < 1600*time.Millisecond {
		t.Fatalf("RTO after 4 backoffs = %v, want ≥ 1.6s", pair.Server.RTO())
	}
}

func TestAbortSendsRSTAndBreaksPeer(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	n.sched.After(20*time.Millisecond, func() { n.pair.Client.Abort() })
	n.sched.Run()
	if n.pair.Client.State() != StateBroken {
		t.Fatalf("client state = %v", n.pair.Client.State())
	}
	if n.pair.Server.State() != StateBroken {
		t.Fatalf("server state = %v, want broken (RST received)", n.pair.Server.State())
	}
}

func TestOrderlyClose(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	n.sched.After(0, func() {
		_ = n.pair.Client.Write([]byte("bye"))
		n.pair.Client.CloseSend()
	})
	n.sched.After(50*time.Millisecond, func() { n.pair.Server.CloseSend() })
	n.sched.Run()
	if n.toSrv.String() != "bye" {
		t.Fatalf("server got %q", n.toSrv.String())
	}
	if !n.srvEOF || !n.cliEOF {
		t.Fatalf("EOF flags: server=%t client=%t", n.srvEOF, n.cliEOF)
	}
	if n.pair.Client.State() != StateClosed || n.pair.Server.State() != StateClosed {
		t.Fatalf("states: %v / %v", n.pair.Client.State(), n.pair.Server.State())
	}
}

func TestWriteAfterCloseSendFails(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	n.pair.Open()
	n.sched.After(0, func() {
		n.pair.Client.CloseSend()
		if err := n.pair.Client.Write([]byte("x")); err == nil {
			t.Error("write after CloseSend succeeded")
		}
	})
	n.sched.Run()
}

func TestSynRetransmission(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(3)
	path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: fastLink()})
	if err != nil {
		t.Fatal(err)
	}
	dropped := 0
	path.Link(netsim.ClientToServer).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*Segment)
		if seg.Flags.Has(FlagSYN) && dropped < 2 {
			dropped++
			return netsim.Verdict{Drop: true}
		}
		return netsim.Verdict{}
	}))
	pair, err := NewPair(sched, rng, path, Config{})
	if err != nil {
		t.Fatal(err)
	}
	pair.Open()
	sched.RunUntil(time.Minute)
	if pair.Client.State() != StateEstablished {
		t.Fatalf("client state = %v after SYN drops", pair.Client.State())
	}
	if dropped != 2 {
		t.Fatalf("dropped %d SYNs, want 2", dropped)
	}
}

func TestRTTEstimate(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{}) // 5ms each way → RTT ≈ 10ms
	n.pair.Open()
	n.sched.After(0, func() { _ = n.pair.Server.Write(make([]byte, 50_000)) })
	n.sched.Run()
	srtt := n.pair.Server.SRTT()
	if srtt < 9*time.Millisecond || srtt > 20*time.Millisecond {
		t.Fatalf("SRTT = %v, want ≈10ms", srtt)
	}
}

func TestConfigValidation(t *testing.T) {
	sched := simtime.NewScheduler()
	if _, err := NewConn(sched, Config{MSS: 10}, "x", 0, func(*Segment) {}); err == nil {
		t.Fatal("tiny MSS accepted")
	}
	if _, err := NewConn(sched, Config{MinRTO: time.Second, MaxRTO: time.Millisecond}, "x", 0, func(*Segment) {}); err == nil {
		t.Fatal("inverted RTO bounds accepted")
	}
	if _, err := NewConn(nil, Config{}, "x", 0, func(*Segment) {}); err == nil {
		t.Fatal("nil scheduler accepted")
	}
	if _, err := NewConn(sched, Config{}, "x", 0, nil); err == nil {
		t.Fatal("nil transmit accepted")
	}
}

func TestFlagsString(t *testing.T) {
	if s := (FlagSYN | FlagACK).String(); s != "SYN|ACK" {
		t.Fatalf("got %q", s)
	}
	if s := Flags(0).String(); s != "-" {
		t.Fatalf("got %q", s)
	}
	if s := (FlagFIN | FlagRST).String(); s != "FIN|RST" {
		t.Fatalf("got %q", s)
	}
}

func TestStateString(t *testing.T) {
	for st, want := range map[State]string{
		StateIdle: "idle", StateListen: "listen", StateSynSent: "syn-sent",
		StateSynRcvd: "syn-rcvd", StateEstablished: "established",
		StateClosed: "closed", StateBroken: "broken", State(0): "state?",
	} {
		if st.String() != want {
			t.Fatalf("State(%d).String() = %q, want %q", st, st.String(), want)
		}
	}
}

func TestSegmentWireSize(t *testing.T) {
	seg := &Segment{Payload: make([]byte, 100)}
	if seg.WireSize() != 140 {
		t.Fatalf("WireSize = %d, want 140", seg.WireSize())
	}
}
