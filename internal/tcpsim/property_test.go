package tcpsim

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
)

// Property: for any seed, loss rate up to 10%, heavy natural jitter
// (reordering) and any payload sizes, both directions deliver exactly the
// bytes written, in order, with no duplication — or the connection reports
// itself broken (it must never silently corrupt).
func TestDeliveryPropertyUnderLossAndReorder(t *testing.T) {
	f := func(seed int64, lossPct uint8, cliLen, srvLen uint16) bool {
		loss := float64(lossPct%10) / 100
		sched := simtime.NewScheduler()
		rng := simtime.NewRand(seed)
		path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
			BandwidthBps:  1e8,
			PropDelay:     2 * time.Millisecond,
			NaturalJitter: 4 * time.Millisecond, // enough to reorder
			LossProb:      loss,
		}})
		if err != nil {
			return false
		}
		pair, err := NewPair(sched, rng, path, Config{MaxRetries: 12})
		if err != nil {
			return false
		}
		cliData := patterned(int(cliLen), 3)
		srvData := patterned(int(srvLen), 7)
		var gotSrv, gotCli bytes.Buffer
		pair.Server.OnData(func(p []byte) { gotSrv.Write(p) })
		pair.Client.OnData(func(p []byte) { gotCli.Write(p) })
		pair.Open()
		sched.After(0, func() { _ = pair.Client.Write(cliData) })
		sched.After(time.Millisecond, func() { _ = pair.Server.Write(srvData) })
		sched.RunUntil(10 * time.Minute)

		broken := pair.Client.State() == StateBroken || pair.Server.State() == StateBroken
		if broken {
			// Acceptable outcome under loss; prefixes must still be clean.
			return bytes.HasPrefix(cliData, gotSrv.Bytes()) && bytes.HasPrefix(srvData, gotCli.Bytes())
		}
		return bytes.Equal(gotSrv.Bytes(), cliData) && bytes.Equal(gotCli.Bytes(), srvData)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: stats invariants hold on any run — retransmit counters are
// non-negative and bytes delivered never exceed bytes sent by the peer.
func TestStatsInvariantProperty(t *testing.T) {
	f := func(seed int64, srvLen uint16) bool {
		sched := simtime.NewScheduler()
		rng := simtime.NewRand(seed)
		path, err := netsim.NewPath(sched, rng, netsim.PathConfig{Link: netsim.LinkConfig{
			BandwidthBps:  1e7,
			PropDelay:     time.Millisecond,
			NaturalJitter: 2 * time.Millisecond,
			LossProb:      0.03,
		}})
		if err != nil {
			return false
		}
		pair, err := NewPair(sched, rng, path, Config{})
		if err != nil {
			return false
		}
		pair.Client.OnData(func([]byte) {})
		pair.Open()
		sched.After(0, func() { _ = pair.Server.Write(make([]byte, int(srvLen))) })
		sched.RunUntil(5 * time.Minute)
		ss, cs := pair.Server.Stats(), pair.Client.Stats()
		if ss.FastRetransmits < 0 || ss.TimeoutRetxSegs < 0 || ss.RTOExpiries < 0 {
			return false
		}
		if cs.BytesDelivered > ss.BytesSent {
			return false // delivered more unique bytes than were ever sent
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func patterned(n int, mul byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i) * mul
	}
	return p
}
