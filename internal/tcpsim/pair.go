package tcpsim

import (
	"fmt"

	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
)

// Pair is a client/server connection wired across a netsim.Path: the
// complete simulated transport under one browser↔webserver session.
type Pair struct {
	Client *Conn
	Server *Conn
}

// NewPair creates both endpoints over the path, installs the path delivery
// handlers, and returns them. The caller still invokes Server.Listen and
// Client.Connect (in that order) to open the connection.
func NewPair(sched *simtime.Scheduler, rng *simtime.Rand, path *netsim.Path, cfg Config) (*Pair, error) {
	if path == nil {
		return nil, fmt.Errorf("tcpsim: NewPair requires a path")
	}
	clientISS := uint64(rng.Intn(1 << 28))
	serverISS := uint64(rng.Intn(1 << 28))
	client, err := NewConn(sched, cfg, "client", clientISS, func(seg *Segment) {
		path.Send(netsim.ClientToServer, seg.WireSize(), seg)
	})
	if err != nil {
		return nil, fmt.Errorf("tcpsim: client endpoint: %w", err)
	}
	server, err := NewConn(sched, cfg, "server", serverISS, func(seg *Segment) {
		path.Send(netsim.ServerToClient, seg.WireSize(), seg)
	})
	if err != nil {
		return nil, fmt.Errorf("tcpsim: server endpoint: %w", err)
	}
	path.Connect(
		func(pkt *netsim.Packet) { server.Deliver(segmentOf(pkt)) },
		func(pkt *netsim.Packet) { client.Deliver(segmentOf(pkt)) },
	)
	if cfg.Pool != nil {
		// One segment pool for both endpoints, recycled through netsim
		// packet delivery: a segment (and its arena payload) comes home
		// when its packet's last scheduled delivery fires or it is
		// dropped at the middlebox. Consumers on that path — endpoints,
		// the capture monitor, the adversary — never retain segments
		// past their callbacks.
		sp := &segPool{arena: cfg.Pool}
		client.segs, server.segs = sp, sp
		path.SetRecycle(sp.release)
	}
	// Cross-link the endpoints so the checker can verify that every byte a
	// side delivers was actually sent by its peer.
	cfg.Check.TCPPeers("client", "server")
	return &Pair{Client: client, Server: server}, nil
}

// Open performs Listen+Connect, starting the three-way handshake.
func (p *Pair) Open() {
	p.Server.Listen()
	p.Client.Connect()
}

// segmentOf extracts the TCP segment from a delivered packet. Non-segment
// payloads (netsim cross-traffic) are ignored: they share the pipe, not
// the connection. Deliver tolerates the resulting nil.
func segmentOf(pkt *netsim.Packet) *Segment {
	seg, _ := pkt.Payload.(*Segment)
	return seg
}
