package tcpsim

import (
	"fmt"
	"testing"

	"h2privacy/internal/simtime"
)

// TestOverlappingOOOGranularityStable replays the shape of the historical
// map-iteration bug through drainOutOfOrder: randomized sets of mutually
// overlapping out-of-order chunks, unlocked by one in-order fill. For each
// of 32 seeds the drain is repeated 5 times in-process; the delivery
// granularity (the exact sequence of onData payload sizes) and the final
// receive state must be identical every time. A drain order that leaks Go
// map iteration order fails this within a few seeds.
func TestOverlappingOOOGranularityStable(t *testing.T) {
	for seed := int64(0); seed < 32; seed++ {
		var want string
		for rep := 0; rep < 5; rep++ {
			rng := simtime.NewRand(seed)
			c := &Conn{ooo: make(map[uint64][]byte)}
			var calls []int
			c.onData = func(p []byte) { calls = append(calls, len(p)) }

			// 3–8 chunks whose spans overlap aggressively: starts drawn
			// from a narrow window, lengths long enough to nest and chain.
			nChunks := 3 + rng.Intn(6)
			for i := 0; i < nChunks; i++ {
				seq := uint64(100 + rng.Intn(400))
				ln := 50 + rng.Intn(300)
				c.ooo[seq] = make([]byte, ln)
			}
			for _, b := range c.ooo {
				c.oooBytes += len(b)
			}
			// The in-order fill lands somewhere inside the chunk window, so
			// several chunks become applicable at once.
			c.rcvNxt = uint64(100 + rng.Intn(400))
			c.drainOutOfOrder()

			got := fmt.Sprintf("calls=%v rcvNxt=%d oooLeft=%d oooBytes=%d",
				calls, c.rcvNxt, len(c.ooo), c.oooBytes)
			if rep == 0 {
				want = got
			} else if got != want {
				t.Fatalf("seed %d rep %d: drain diverged\n first: %s\n now:   %s", seed, rep, want, got)
			}
		}
	}
}
