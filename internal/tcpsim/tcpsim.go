// Package tcpsim implements an event-driven TCP over netsim links: enough
// of RFC 5681/6298 to reproduce the transport mechanics the paper's attack
// manipulates — slow start and congestion avoidance, duplicate-ACK fast
// retransmit with fast recovery, retransmission timeouts with exponential
// backoff and Karn-compliant RTT estimation, out-of-order reassembly, and
// connection failure after repeated timeouts ("broken connection", §IV-C).
//
// The implementation is deliberately a simulation, not a wire-compatible
// stack: sequence numbers are 64-bit (no wraparound handling), there is no
// SACK, and options are not encoded as bytes. Every simplification keeps
// the timing/ordering behaviour that matters to the attack.
package tcpsim

import (
	"fmt"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/pool"
	"h2privacy/internal/trace"
)

// HeaderOverhead is the per-segment IP+TCP header cost in bytes, used to
// compute on-the-wire packet sizes.
const HeaderOverhead = 40

// Flags mark TCP control bits on a segment.
type Flags uint8

// Segment control bits.
const (
	FlagSYN Flags = 1 << iota
	FlagACK
	FlagFIN
	FlagRST
)

// Has reports whether all bits in f2 are set.
func (f Flags) Has(f2 Flags) bool { return f&f2 == f2 }

// String renders the set flags, e.g. "SYN|ACK".
func (f Flags) String() string {
	s := ""
	add := func(name string) {
		if s != "" {
			s += "|"
		}
		s += name
	}
	if f.Has(FlagSYN) {
		add("SYN")
	}
	if f.Has(FlagACK) {
		add("ACK")
	}
	if f.Has(FlagFIN) {
		add("FIN")
	}
	if f.Has(FlagRST) {
		add("RST")
	}
	if s == "" {
		s = "-"
	}
	return s
}

// Segment is one TCP segment as carried in a netsim packet payload.
type Segment struct {
	Flags   Flags
	Seq     uint64
	Ack     uint64
	Window  int
	Payload []byte
	// Retransmit marks segments re-sent by the sender. On-path observers
	// could infer this from sequence numbers; the flag is ground truth
	// for metrics and lets the capture monitor skip inference.
	Retransmit bool
}

// WireSize is the packet size on the wire: headers plus payload.
func (s *Segment) WireSize() int { return HeaderOverhead + len(s.Payload) }

// String formats the segment for traces.
func (s *Segment) String() string {
	return fmt.Sprintf("[%s seq=%d ack=%d len=%d rtx=%t]", s.Flags, s.Seq, s.Ack, len(s.Payload), s.Retransmit)
}

// State is the connection lifecycle state (simplified TCP state machine).
type State int

// Connection states.
const (
	StateIdle State = iota + 1
	StateListen
	StateSynSent
	StateSynRcvd
	StateEstablished
	StateClosed // orderly close completed (FIN exchanged)
	StateBroken // reset or retry limit exceeded
)

// String names the state.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateListen:
		return "listen"
	case StateSynSent:
		return "syn-sent"
	case StateSynRcvd:
		return "syn-rcvd"
	case StateEstablished:
		return "established"
	case StateClosed:
		return "closed"
	case StateBroken:
		return "broken"
	default:
		return "state?"
	}
}

// Config tunes a connection. The zero value is completed by applyDefaults.
type Config struct {
	// MSS is the maximum segment payload size. Default 1460.
	MSS int
	// InitCwndSegs is the initial congestion window in segments
	// (RFC 6928 initial window). Default 10.
	InitCwndSegs int
	// InitSsthresh is the initial slow-start threshold in bytes.
	// Default 1 MiB.
	InitSsthresh int
	// RecvWindow is the advertised receive window in bytes. Default 4 MiB.
	RecvWindow int
	// MinRTO clamps the retransmission timeout from below. Default 200 ms.
	MinRTO time.Duration
	// MaxRTO clamps the backed-off RTO from above. Default 2 s — far
	// below the RFC's 60 s ceiling, approximating the tail-loss-probe /
	// RACK behaviour of modern stacks, which keep probing a lossy path
	// every couple of seconds instead of idling through long backoffs.
	MaxRTO time.Duration
	// MaxRetries is the number of consecutive RTO expiries for the same
	// data before the connection is declared broken. Default 6.
	MaxRetries int
	// DupAckThreshold triggers fast retransmit. Default 3.
	DupAckThreshold int
	// DelayedAck enables RFC 1122 delayed acknowledgements on the
	// receive side: pure ACKs for in-order data are held until a second
	// segment arrives or DelAckTimeout passes. Out-of-order segments
	// still trigger immediate duplicate ACKs. Off by default (the
	// calibrated testbed models an immediate-ACK receiver).
	DelayedAck bool
	// DelAckTimeout is the delayed-ACK timer. Default 40 ms.
	DelAckTimeout time.Duration
	// DisableRACKWindow turns off the RACK-style reordering window: by
	// default, reaching the dup-ACK threshold arms fast retransmit after
	// a quarter-SRTT delay (clamped to [1 ms, 20 ms]) and cancels it if
	// the cumulative ACK advances first, so micro-reordering does not
	// trigger spurious retransmissions (RFC 8985's key idea). Large
	// reordering — like the adversary's tens-of-milliseconds jitter —
	// still outlasts the window and triggers the storm the paper
	// documents.
	DisableRACKWindow bool
	// Pool, when non-nil, arms trial-scoped memory recycling on pairs
	// built with NewPair: segment payloads (and the receiver's
	// out-of-order buffers) are rented from the arena, Segment structs
	// are free-listed, and netsim packet recycling is installed on the
	// path so everything returns once the last delivery fires. The
	// arena is owned by the worker running the trial and is reused —
	// via its Reset contract — across that worker's trials. Pooling
	// changes where bytes live, never what they contain; byte-identity
	// with the unpooled path is pinned by tests.
	Pool *pool.Arena
	// Tracer, when non-nil, arms per-connection transport tracing (cwnd
	// changes, RTO fires, recovery entry/exit, SRTT samples).
	Tracer *trace.Tracer
	// Check, when non-nil, arms the sequence-space invariant checkers
	// (see internal/check): conservation of delivered bytes, ACK bounds,
	// and sndNxt/rcvNxt monotonicity outside RTO rewinds.
	Check *check.Checker
}

func (c Config) withDefaults() Config {
	if c.MSS == 0 {
		c.MSS = 1460
	}
	if c.InitCwndSegs == 0 {
		c.InitCwndSegs = 10
	}
	if c.InitSsthresh == 0 {
		c.InitSsthresh = 1 << 20
	}
	if c.RecvWindow == 0 {
		c.RecvWindow = 4 << 20
	}
	if c.MinRTO == 0 {
		c.MinRTO = 200 * time.Millisecond
	}
	if c.MaxRTO == 0 {
		c.MaxRTO = 2 * time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 6
	}
	if c.DupAckThreshold == 0 {
		c.DupAckThreshold = 3
	}
	if c.DelAckTimeout == 0 {
		c.DelAckTimeout = 40 * time.Millisecond
	}
	return c
}

func (c Config) validate() error {
	if c.MSS < 64 {
		return fmt.Errorf("tcpsim: MSS %d too small", c.MSS)
	}
	if c.MinRTO <= 0 || c.MaxRTO < c.MinRTO {
		return fmt.Errorf("tcpsim: invalid RTO bounds [%v, %v]", c.MinRTO, c.MaxRTO)
	}
	if c.MaxRetries < 1 || c.DupAckThreshold < 1 {
		return fmt.Errorf("tcpsim: MaxRetries and DupAckThreshold must be ≥ 1")
	}
	return nil
}

// Stats counts transport events on one connection endpoint. The paper's
// Table I and Fig. 5 report retransmission counts taken from here.
type Stats struct {
	SegmentsSent     int
	BytesSent        int64 // payload bytes, first transmissions only
	SegmentsReceived int
	BytesDelivered   int64 // in-order payload bytes handed to the app
	FastRetransmits  int
	TimeoutRetxSegs  int // segments re-sent due to RTO (go-back-N resends)
	TLPProbes        int // tail-loss probe retransmissions
	RTOExpiries      int
	DupAcksSent      int
	DupAcksReceived  int
	OutOfOrderSegs   int
	DuplicateSegs    int // segments entirely below rcvNxt
}

// Retransmits is the total number of retransmitted data segments.
func (s Stats) Retransmits() int { return s.FastRetransmits + s.TimeoutRetxSegs + s.TLPProbes }
