package tcpsim

import (
	"bytes"
	"testing"
	"time"

	"h2privacy/internal/netsim"
)

// ackEater drops client→server pure ACKs while armed: the data sender's
// RTO fires and rewinds, and the first acknowledgement it then hears is a
// high cumulative one for the whole pre-rewind flight — far above the
// rewound sndNxt.
type ackEater struct {
	from, until time.Duration
}

func (h *ackEater) Process(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
	seg, ok := pkt.Payload.(*Segment)
	if ok && len(seg.Payload) == 0 && pkt.Dir == netsim.ClientToServer &&
		now >= h.from && now < h.until {
		return netsim.Verdict{Drop: true}
	}
	return netsim.Verdict{}
}

// TestStaleAckAfterRTORewindIsAccepted is the regression test for the
// go-back-N deadlock: an RTO rewinds sndNxt to sndUna while an ACK for the
// pre-rewind flight is still in the network. That ACK arrives with
// ack > sndNxt; a sender that discards it (the old `ack <= sndNxt` bound)
// keeps retransmitting data the receiver already has, every re-ACK lands
// above the rewound sndNxt again, and both ends ride the RTO backoff to a
// MaxRetries abort. Accepting any ack up to maxSndNxt and fast-forwarding
// sndNxt lets the transfer complete without an abort.
func TestStaleAckAfterRTORewindIsAccepted(t *testing.T) {
	n := newTestNet(t, fastLink(), Config{})
	// Eat every ACK for the initial flight and for the first RTO
	// retransmission (MinRTO is 200ms): when the window lifts, the client's
	// next acknowledgement is cumulative for everything it received —
	// a stale high ACK landing on a freshly rewound sender.
	n.path.AddProcessor(&ackEater{from: 35 * time.Millisecond, until: 240 * time.Millisecond})
	n.pair.Open()
	data := make([]byte, 200_000)
	for i := range data {
		data[i] = byte(i * 17)
	}
	n.sched.After(30*time.Millisecond, func() { _ = n.pair.Server.Write(data) })
	n.sched.RunUntil(30 * time.Second)
	if err := n.pair.Server.Err(); err != nil {
		t.Fatalf("server aborted: %v (stale-ACK deadlock)", err)
	}
	if err := n.pair.Client.Err(); err != nil {
		t.Fatalf("client aborted: %v", err)
	}
	if !bytes.Equal(n.toCli.Bytes(), data) {
		t.Fatalf("transfer incomplete: client received %d of %d bytes", n.toCli.Len(), len(data))
	}
	if n.pair.Server.Stats().Retransmits() == 0 {
		t.Fatal("scenario never provoked a retransmission — the held-ACK window is not biting")
	}
}

// TestDrainOutOfOrderDeterministic pins the out-of-order drain order. When
// one in-order fill makes two overlapping buffered chunks contiguous at
// once, lowest-seq-first delivery keeps the onData call granularity — and
// therefore the byte stream's segmentation upstack — independent of map
// iteration order. The old map-range drain delivered the tail as either one
// 40-byte call or a 10+30 split depending on the run.
func TestDrainOutOfOrderDeterministic(t *testing.T) {
	for i := 0; i < 200; i++ {
		c := &Conn{ooo: make(map[uint64][]byte)}
		var calls []int
		c.onData = func(p []byte) { calls = append(calls, len(p)) }
		c.ooo[150] = make([]byte, 100) // [150,250)
		c.ooo[200] = make([]byte, 20)  // [200,220), nested in the above
		c.oooBytes = 120
		c.rcvNxt = 210 // an in-order fill just advanced past both starts
		c.drainOutOfOrder()
		if len(calls) != 1 || calls[0] != 40 {
			t.Fatalf("iter %d: onData calls %v, want [40] (drain order leaked map order)", i, calls)
		}
		if c.rcvNxt != 250 || c.oooBytes != 0 || len(c.ooo) != 0 {
			t.Fatalf("iter %d: rcvNxt=%d oooBytes=%d left=%d", i, c.rcvNxt, c.oooBytes, len(c.ooo))
		}
	}
}
