package tcpsim

import (
	"fmt"
	"time"

	"h2privacy/internal/trace"
)

// traceCwnd records a congestion-window change with its cause.
func (c *Conn) traceCwnd(why string) {
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerTCP, "cwnd",
			trace.Str("conn", c.name), trace.Num("cwnd", int64(c.cwnd)),
			trace.Num("ssthresh", int64(c.ssthresh)), trace.Str("why", why))
	}
}

// trySend pushes as much buffered data as the send window allows, then the
// FIN if one is queued and all data is out.
func (c *Conn) trySend() {
	if c.state != StateEstablished && c.state != StateSynRcvd {
		return
	}
	wnd := c.cwnd
	if c.peerWnd < wnd {
		wnd = c.peerWnd
	}
	for {
		inFlight := int(c.sndNxt - c.sndUna)
		if c.finSent {
			inFlight-- // the FIN occupies one sequence number but no window
		}
		if inFlight >= wnd {
			break
		}
		offset := int(c.sndNxt - c.sndUna)
		if c.finSent {
			break // nothing may follow a FIN
		}
		if offset >= len(c.sendBuf) {
			break
		}
		n := len(c.sendBuf) - offset
		if n > c.cfg.MSS {
			n = c.cfg.MSS
		}
		if room := wnd - inFlight; n > room {
			n = room
		}
		if n <= 0 {
			break
		}
		payload := c.arena.Bytes(n)
		copy(payload, c.sendBuf[offset:offset+n])
		seg := c.makeSeg(FlagACK, c.sndNxt, c.rcvNxt, c.advertisedWindow(), payload, false)
		if seg.Seq < c.maxSndNxt {
			seg.Retransmit = true
			c.stats.TimeoutRetxSegs++
		} else {
			c.stats.BytesSent += int64(n)
			// Start an RTT sample on the first eligible transmission.
			if !c.rttPending {
				c.rttPending = true
				c.rttSeq = c.sndNxt + uint64(n)
				c.rttSentAt = c.sched.Now()
			}
		}
		c.sndNxt += uint64(n)
		if c.sndNxt > c.maxSndNxt {
			c.maxSndNxt = c.sndNxt
		}
		c.stats.SegmentsSent++
		c.transmit(seg)
		c.armRTO()
	}
	// Send the FIN once the buffer is fully transmitted.
	if c.finQueued && !c.finSent && int(c.sndNxt-c.sndUna) == len(c.sendBuf) {
		c.finSeq = c.sndNxt
		c.finSent = true
		c.sndNxt++
		if c.sndNxt > c.maxSndNxt {
			c.maxSndNxt = c.sndNxt
		}
		c.transmit(c.makeSeg(FlagACK|FlagFIN, c.finSeq, c.rcvNxt, c.advertisedWindow(), nil, false))
		c.armRTO()
	}
}

// legacyStaleAck reverts processAck to its pre-fix acceptance bound
// (sndNxt instead of maxSndNxt), reintroducing the go-back-N stale-ACK
// deadlock that PR 4 fixed. It exists solely so the property harness can
// prove it rediscovers the bug; never set it outside tests. Toggle only
// while no trials are running (it is an unsynchronized global).
var legacyStaleAck bool

// SetLegacyStaleAck enables or disables the deliberately re-broken
// processAck behaviour. Test hook — see legacyStaleAck.
func SetLegacyStaleAck(on bool) { legacyStaleAck = on }

// processAck handles the acknowledgement field of an incoming segment:
// window advance, RTT sampling, congestion control, duplicate-ACK fast
// retransmit (RFC 5681) with NewReno-style recovery.
func (c *Conn) processAck(seg *Segment) {
	if seg.Window > 0 {
		c.peerWnd = seg.Window
	}
	ack := seg.Ack
	ackBound := c.maxSndNxt
	if legacyStaleAck {
		ackBound = c.sndNxt
	}
	switch {
	case ack > c.sndUna && ack <= ackBound:
		// Bounded by the highest sequence ever sent, not sndNxt: after an
		// RTO's go-back-N rewind an ACK for the pre-rewind flight is still
		// in the network, and ignoring it deadlocks both ends — the sender
		// keeps retransmitting data the receiver already has, and every
		// re-ACK lands above the rewound sndNxt forever.
		if ack > c.sndNxt {
			c.sndNxt = ack
		}
		acked := int(ack - c.sndUna)
		dataAcked := acked
		if c.finSent && ack > c.finSeq {
			dataAcked--
			c.finAcked = true
		}
		if dataAcked > len(c.sendBuf) {
			dataAcked = len(c.sendBuf)
		}
		c.sendBuf = c.sendBuf[dataAcked:]
		c.sndUna = ack
		c.retries = 0
		c.dupAcks = 0

		if c.rttPending && ack >= c.rttSeq {
			c.sampleRTT(c.sched.Now() - c.rttSentAt)
			c.rttPending = false
		} else if c.srtt > 0 {
			// Forward progress collapses any exponential backoff back to
			// the estimator-based timeout (Linux recovers RTO via
			// timestamps even across retransmissions; a stack that keeps
			// an 8 s RTO after the loss episode ends would stall for
			// seconds on the next hole).
			c.refreshRTO()
		}

		if c.inRecovery {
			if ack >= c.recoverPt {
				// Full recovery: deflate to ssthresh.
				c.inRecovery = false
				c.cwnd = c.ssthresh
				if c.tr.Enabled() {
					c.tr.Emit(trace.LayerTCP, "recovery-exit",
						trace.Str("conn", c.name), trace.Num("cwnd", int64(c.cwnd)))
				}
				c.traceCwnd("recovery-exit")
			} else {
				// Partial ACK: the next hole is lost too; retransmit it
				// immediately without leaving recovery (NewReno).
				c.retransmitFirstUnacked()
			}
		} else {
			if c.cwnd < c.ssthresh {
				// Slow start with byte counting.
				inc := acked
				if inc > c.cfg.MSS {
					inc = c.cfg.MSS
				}
				c.cwnd += inc
				c.traceCwnd("slow-start")
			} else {
				// Congestion avoidance: ~one MSS per RTT.
				inc := c.cfg.MSS * c.cfg.MSS / c.cwnd
				if inc < 1 {
					inc = 1
				}
				c.cwnd += inc
				c.traceCwnd("cong-avoid")
			}
		}

		if c.sndUna == c.sndNxt {
			c.disarmRTO()
			c.disarmPTO()
		} else {
			c.armRTOReset()
			c.armPTO()
		}
		c.maybeFinishClose()
		c.trySend()
		if dataAcked > 0 && c.onDrain != nil {
			c.onDrain()
		}

	case ack == c.sndUna:
		// RFC 5681 duplicate ACK: no data, no SYN/FIN, with outstanding
		// data. (We deliberately skip the "window unchanged" clause: our
		// receiver shrinks its advertised window as out-of-order bytes
		// accumulate, which would otherwise mask genuine dup-ACKs.)
		if len(seg.Payload) == 0 && !seg.Flags.Has(FlagSYN) && !seg.Flags.Has(FlagFIN) && c.sndNxt > c.sndUna {
			c.dupAcks++
			c.stats.DupAcksReceived++
			switch {
			case c.dupAcks == c.cfg.DupAckThreshold:
				c.armFastRetransmit()
			case c.dupAcks > c.cfg.DupAckThreshold && c.inRecovery:
				// Inflate during recovery: each further dup-ACK signals a
				// departed segment.
				c.cwnd += c.cfg.MSS
				c.traceCwnd("dupack-inflate")
				c.trySend()
			}
		}
	default:
		// Stale ACK (below sndUna) or acking unsent data: ignore.
	}
}

// armFastRetransmit fires fast retransmit either immediately or — with
// the RACK-style reordering window — after srtt/4, cancelled if the
// cumulative ACK advances in the meantime (the "hole" was reordering, not
// loss).
func (c *Conn) armFastRetransmit() {
	if c.cfg.DisableRACKWindow || c.srtt == 0 {
		c.fastRetransmit()
		return
	}
	if c.rackTimer != nil {
		return // already armed
	}
	window := c.srtt / 4
	if window < time.Millisecond {
		window = time.Millisecond
	}
	if window > 20*time.Millisecond {
		window = 20 * time.Millisecond
	}
	c.rackHole = c.sndUna
	c.rackTimer = c.sched.After(window, c.onRackFn)
}

// onRack fires the RACK reordering-window timer (bound once as
// onRackFn); rackHole holds the sndUna snapshot taken at arm time.
func (c *Conn) onRack() {
	c.rackTimer = nil
	if c.state != StateEstablished || c.sndUna != c.rackHole || c.dupAcks < c.cfg.DupAckThreshold {
		return // the hole filled itself: reordering, not loss
	}
	c.fastRetransmit()
}

// fastRetransmit resends the first unacknowledged segment and enters fast
// recovery.
func (c *Conn) fastRetransmit() {
	if int(c.sndNxt-c.sndUna) == 0 {
		return
	}
	flight := int(c.sndNxt - c.sndUna)
	c.ssthresh = flight / 2
	if min := 2 * c.cfg.MSS; c.ssthresh < min {
		c.ssthresh = min
	}
	c.stats.FastRetransmits++
	c.ctFastRtx.Inc()
	c.rttPending = false // Karn: retransmission poisons the sample
	c.retransmitFirstUnacked()
	c.cwnd = c.ssthresh + c.cfg.DupAckThreshold*c.cfg.MSS
	c.inRecovery = true
	c.recoverPt = c.sndNxt
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerTCP, "recovery-enter",
			trace.Str("conn", c.name), trace.Num("cwnd", int64(c.cwnd)),
			trace.Num("ssthresh", int64(c.ssthresh)), trace.Num("flight", int64(flight)))
	}
	c.traceCwnd("fast-retransmit")
}

// retransmitFirstUnacked re-sends one MSS (or the FIN) starting at sndUna.
func (c *Conn) retransmitFirstUnacked() {
	if c.finSent && c.sndUna == c.finSeq {
		c.transmit(c.makeSeg(FlagACK|FlagFIN, c.finSeq, c.rcvNxt, c.advertisedWindow(), nil, true))
		c.armRTOReset()
		return
	}
	n := len(c.sendBuf)
	if n == 0 {
		return
	}
	if n > c.cfg.MSS {
		n = c.cfg.MSS
	}
	payload := c.arena.Bytes(n)
	copy(payload, c.sendBuf[:n])
	c.stats.SegmentsSent++
	c.transmit(c.makeSeg(FlagACK, c.sndUna, c.rcvNxt, c.advertisedWindow(), payload, true))
	c.armRTOReset()
}

// onRTO fires when the retransmission timer expires: exponential backoff,
// collapse cwnd, and go-back-N from sndUna. After MaxRetries consecutive
// expiries the connection is declared broken — the paper's "broken
// connection" outcome at 1 Mbps (§IV-C) and under excessive jitter (§V).
func (c *Conn) onRTO() {
	c.rtoTimer = nil
	c.disarmPTO()
	if c.rackTimer != nil {
		c.sched.Cancel(c.rackTimer)
		c.rackTimer = nil
	}
	c.stats.RTOExpiries++
	c.ctRTO.Inc()
	c.retries++
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerTCP, "rto",
			trace.Str("conn", c.name), trace.Num("retries", int64(c.retries)),
			trace.Dur("rto", c.rto), trace.Num("flight", int64(c.sndNxt-c.sndUna)))
	}
	if c.retries > c.cfg.MaxRetries {
		c.fail(fmt.Errorf("tcpsim: %s: %d consecutive retransmission timeouts", c.name, c.retries))
		return
	}
	c.rto *= 2
	if c.rto > c.cfg.MaxRTO {
		c.rto = c.cfg.MaxRTO
	}
	c.rttPending = false
	c.dupAcks = 0
	c.inRecovery = false

	switch c.state {
	case StateSynSent:
		c.stats.SegmentsSent++
		c.transmit(c.makeSeg(FlagSYN, c.iss, 0, c.advertisedWindow(), nil, true))
		c.armRTO()
	case StateSynRcvd:
		c.stats.SegmentsSent++
		c.transmit(c.makeSeg(FlagSYN|FlagACK, c.iss, c.rcvNxt, c.advertisedWindow(), nil, true))
		c.armRTO()
	case StateEstablished:
		flight := int(c.sndNxt - c.sndUna)
		c.ssthresh = flight / 2
		if min := 2 * c.cfg.MSS; c.ssthresh < min {
			c.ssthresh = min
		}
		c.cwnd = c.cfg.MSS
		c.traceCwnd("rto")
		// Go-back-N: rewind and let trySend re-emit (marked Retransmit).
		if c.ck.Enabled() {
			c.ck.TCPRewind(c.name, c.sndNxt, c.sndUna)
		}
		c.sndNxt = c.sndUna
		if c.finSent && c.finSeq >= c.sndUna {
			c.finSent = false
		}
		c.trySend()
		c.armRTO() // even if nothing was sent (zero peer window)
	default:
	}
}

func (c *Conn) sampleRTT(sample time.Duration) {
	if sample <= 0 {
		sample = time.Microsecond
	}
	if c.tr.Enabled() {
		c.hSRTT.ObserveDuration(sample)
		c.tr.Emit(trace.LayerTCP, "srtt",
			trace.Str("conn", c.name), trace.Dur("sample", sample), trace.Dur("srtt", c.srtt))
	}
	if c.srtt == 0 {
		c.srtt = sample
		c.rttvar = sample / 2
	} else {
		diff := c.srtt - sample
		if diff < 0 {
			diff = -diff
		}
		c.rttvar = (3*c.rttvar + diff) / 4
		c.srtt = (7*c.srtt + sample) / 8
	}
	c.refreshRTO()
}

// refreshRTO derives the timeout from the current estimator state.
func (c *Conn) refreshRTO() {
	rto := c.srtt + 4*c.rttvar
	if rto < c.cfg.MinRTO {
		rto = c.cfg.MinRTO
	}
	if rto > c.cfg.MaxRTO {
		rto = c.cfg.MaxRTO
	}
	c.rto = rto
}

// armRTO starts the retransmission timer if it is not already running.
func (c *Conn) armRTO() {
	if c.rtoTimer != nil {
		return
	}
	c.rtoTimer = c.sched.After(c.rto, c.onRTOFn)
	c.armPTO()
}

// armPTO (re)starts the tail-loss probe: if no acknowledgement arrives for
// ~2×SRTT while data is outstanding, one segment is probed without waiting
// out a backed-off RTO (RFC 8985 §7.2). The probe is what lets a sender
// recover promptly the instant a loss episode — like the adversary's §IV-D
// drop window — ends, instead of idling into a seconds-long RTO.
func (c *Conn) armPTO() {
	if c.cfg.DisableRACKWindow || c.srtt == 0 {
		return
	}
	c.disarmPTO()
	pto := 2 * c.srtt
	if min := 10 * time.Millisecond; pto < min {
		pto = min
	}
	if pto >= c.rto {
		return // the RTO fires first anyway
	}
	c.ptoTimer = c.sched.After(pto, c.onPTOFn)
}

// onPTO fires the tail-loss probe timer (bound once as onPTOFn).
func (c *Conn) onPTO() {
	c.ptoTimer = nil
	if c.state != StateEstablished || c.sndNxt == c.sndUna {
		return
	}
	c.stats.TLPProbes++
	c.ctTLP.Inc()
	if c.tr.Enabled() {
		c.tr.Emit(trace.LayerTCP, "tlp",
			trace.Str("conn", c.name), trace.Num("flight", int64(c.sndNxt-c.sndUna)))
	}
	c.rttPending = false // Karn: the probe poisons pending samples
	c.retransmitFirstUnacked()
	// No backoff, no cwnd collapse: the RTO remains armed as the
	// backstop; the next ACK re-arms the probe.
}

func (c *Conn) disarmPTO() {
	if c.ptoTimer != nil {
		c.sched.Cancel(c.ptoTimer)
		c.ptoTimer = nil
	}
}

// armRTOReset restarts the timer (used when the window advances).
func (c *Conn) armRTOReset() {
	c.disarmRTO()
	c.rtoTimer = c.sched.After(c.rto, c.onRTOFn)
}

func (c *Conn) disarmRTO() {
	if c.rtoTimer != nil {
		c.sched.Cancel(c.rtoTimer)
		c.rtoTimer = nil
	}
}

// maybeFinishClose transitions to Closed once both sides' FINs are done:
// ours acknowledged and the peer's received.
func (c *Conn) maybeFinishClose() {
	if c.finAcked && c.eofSent {
		c.disarmRTO()
		c.setState(StateClosed)
	}
}
