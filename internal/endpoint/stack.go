// Package endpoint implements the event-driven application endpoints of
// the simulated testbed: a multi-threaded HTTP/2 web server serving the
// model website, and a Firefox-like browser driving a request plan. Both
// run sans goroutines on the shared simtime scheduler, wiring
// tcpsim → tlsrec → h2 exactly as h2sync does for real sockets.
//
// The server reproduces the paper's Fig. 3 mechanics: one logical thread
// per stream producing the object in small chunks with random service
// times, so concurrent streams interleave DATA frames (multiplexing),
// while a lone stream transmits serialized. The browser reproduces the
// client behaviours the attack leans on: request scheduling with the
// paper's inter-request gaps, duplicate GETs for stalled responses (the
// "retransmission requests" of §IV-B) and the stall-triggered RST_STREAM
// + re-request cycle of §IV-D.
package endpoint

import (
	"h2privacy/internal/h2"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/tlsrec"
)

// stack glues one endpoint's TCP, TLS and HTTP/2 layers together.
type stack struct {
	tcp *tcpsim.Conn
	tls *tlsrec.Conn
	h2c *h2.Conn

	// pendingOut holds h2 bytes produced before the TLS handshake
	// completes (the preface/SETTINGS), flushed on establishment.
	pendingOut [][]byte
	// tapH2Out, when set, observes every h2 output frame before sealing
	// (the server's ground-truth transmission log hangs here).
	tapH2Out func([]byte)
	// onEstablished, when set, runs after the TLS handshake completes and
	// the queued h2 preface has been flushed.
	onEstablished func()
	// onFatal reports transport/record/protocol failures upward.
	onFatal func(error)
}

// newStack wires the three layers. isClient selects TLS/h2 roles; rng
// seeds the TLS handshake randomness; h2cfg tunes the HTTP/2 endpoint.
func newStack(tcp *tcpsim.Conn, isClient bool, rng *simtime.Rand, h2cfg h2.Config, onFatal func(error)) (*stack, error) {
	s := &stack{tcp: tcp, onFatal: onFatal}
	var random [32]byte
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	s.tls = tlsrec.NewConn(isClient, random, func(b []byte) {
		if err := tcp.Write(b); err != nil {
			s.fatal(err)
		}
	})
	var err error
	s.h2c, err = h2.NewConn(isClient, h2cfg, func(b []byte) {
		if s.tapH2Out != nil {
			s.tapH2Out(b)
		}
		if !s.tls.Established() {
			cp := make([]byte, len(b))
			copy(cp, b)
			s.pendingOut = append(s.pendingOut, cp)
			return
		}
		if err := s.tls.Send(tlsrec.ContentApplicationData, b); err != nil {
			s.fatal(err)
		}
	})
	if err != nil {
		return nil, err
	}
	s.tls.OnEstablished(func() {
		for _, b := range s.pendingOut {
			if err := s.tls.Send(tlsrec.ContentApplicationData, b); err != nil {
				s.fatal(err)
				return
			}
		}
		s.pendingOut = nil
		if s.onEstablished != nil {
			s.onEstablished()
		}
	})
	s.tls.OnRecord(func(ct tlsrec.ContentType, payload []byte) {
		if ct != tlsrec.ContentApplicationData {
			return
		}
		if err := s.h2c.Feed(payload); err != nil {
			s.fatal(err)
		}
	})
	tcp.OnData(func(b []byte) {
		if err := s.tls.Feed(b); err != nil {
			s.fatal(err)
		}
	})
	return s, nil
}

func (s *stack) fatal(err error) {
	if s.onFatal != nil {
		s.onFatal(err)
	}
}
