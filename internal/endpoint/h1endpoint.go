package endpoint

import (
	"fmt"
	"time"

	"h2privacy/internal/h1"
	"h2privacy/internal/metrics"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/tlsrec"
	"h2privacy/internal/website"
)

// H1Server is the §II baseline: an HTTP/1.1 server that processes requests
// strictly sequentially on the connection. Every object transmits
// serialized (degree of multiplexing identically zero), which is what made
// HTTP/1.x websites trivially fingerprintable.
type H1Server struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	site  *website.Site
	cfg   ServerConfig

	tcp   *tcpsim.Conn
	tls   *tlsrec.Conn
	conn  *h1.ServerConn
	queue []*website.Object // responses owed, in request order
	busy  bool

	txLog      []metrics.TxSpan
	payloadOff int64
	fatalErr   error
}

// NewH1Server builds the baseline server endpoint.
func NewH1Server(sched *simtime.Scheduler, rng *simtime.Rand, tcp *tcpsim.Conn, site *website.Site, cfg ServerConfig) (*H1Server, error) {
	if site == nil {
		return nil, fmt.Errorf("endpoint: NewH1Server requires a site")
	}
	s := &H1Server{sched: sched, rng: rng, site: site, cfg: cfg.withDefaults(), tcp: tcp}
	var random [32]byte
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	s.tls = tlsrec.NewConn(false, random, func(b []byte) {
		if err := tcp.Write(b); err != nil && s.fatalErr == nil {
			s.fatalErr = err
		}
	})
	s.conn = h1.NewServerConn(func(b []byte) {
		if err := s.tls.Send(tlsrec.ContentApplicationData, b); err != nil && s.fatalErr == nil {
			s.fatalErr = err
		}
	})
	s.conn.OnRequest(s.onRequest)
	s.tls.OnRecord(func(ct tlsrec.ContentType, payload []byte) {
		if ct != tlsrec.ContentApplicationData {
			return
		}
		if err := s.conn.Feed(payload); err != nil && s.fatalErr == nil {
			s.fatalErr = err
		}
	})
	tcp.OnData(func(b []byte) {
		if err := s.tls.Feed(b); err != nil && s.fatalErr == nil {
			s.fatalErr = err
		}
	})
	return s, nil
}

// Start begins listening.
func (s *H1Server) Start() { s.tcp.Listen() }

// Err returns the first fatal error.
func (s *H1Server) Err() error { return s.fatalErr }

// TxLog returns the ground-truth transmission log.
func (s *H1Server) TxLog() []metrics.TxSpan { return s.txLog }

func (s *H1Server) onRequest(req h1.Request) {
	obj := s.site.Lookup(req.Path)
	if obj == nil {
		_ = s.conn.Respond(h1.Response{Status: 404})
		return
	}
	s.queue = append(s.queue, obj)
	s.serveNext()
}

// serveNext processes the head-of-line request after its service time —
// one at a time: the HoL blocking that defines the baseline.
func (s *H1Server) serveNext() {
	if s.busy || len(s.queue) == 0 {
		return
	}
	s.busy = true
	obj := s.queue[0]
	s.queue = s.queue[1:]
	dispatch := s.cfg.DispatchDelay
	if obj.Dynamic {
		dispatch = s.cfg.DynamicDispatch
	}
	service := s.rng.LogNormal(dispatch, s.cfg.ChunkDelaySigma) +
		time.Duration(obj.Size/s.cfg.ChunkSize+1)*s.rng.LogNormal(s.cfg.ChunkDelayMedian, s.cfg.ChunkDelaySigma)
	s.sched.After(service, func() {
		body := s.site.Body(obj)
		s.txLog = append(s.txLog, metrics.TxSpan{
			Instance: obj.ID + "#0",
			ObjectID: obj.ID,
			Offset:   s.payloadOff,
			Len:      len(body),
			At:       s.sched.Now(),
		})
		s.payloadOff += int64(len(body))
		_ = s.conn.Respond(h1.Response{
			Status: 200,
			Header: map[string]string{"Content-Type": obj.Type},
			Body:   body,
		})
		s.busy = false
		s.serveNext()
	})
}

// H1Browser drives the same request plan over HTTP/1.1, requesting
// objects sequentially (one outstanding request, as pre-pipelining
// browsers did per connection).
type H1Browser struct {
	sched *simtime.Scheduler
	site  *website.Site
	plan  *website.Plan

	tcp  *tcpsim.Conn
	tls  *tlsrec.Conn
	conn *h1.ClientConn

	nextStep  int
	completed map[string]time.Duration
	fatalErr  error
}

// NewH1Browser builds the baseline client endpoint.
func NewH1Browser(sched *simtime.Scheduler, rng *simtime.Rand, tcp *tcpsim.Conn, site *website.Site, plan *website.Plan) (*H1Browser, error) {
	if site == nil || plan == nil {
		return nil, fmt.Errorf("endpoint: NewH1Browser requires a site and plan")
	}
	b := &H1Browser{
		sched:     sched,
		site:      site,
		plan:      plan,
		tcp:       tcp,
		completed: make(map[string]time.Duration),
	}
	var random [32]byte
	for i := range random {
		random[i] = byte(rng.Intn(256))
	}
	b.tls = tlsrec.NewConn(true, random, func(buf []byte) {
		if err := tcp.Write(buf); err != nil && b.fatalErr == nil {
			b.fatalErr = err
		}
	})
	b.conn = h1.NewClientConn(func(buf []byte) {
		if err := b.tls.Send(tlsrec.ContentApplicationData, buf); err != nil && b.fatalErr == nil {
			b.fatalErr = err
		}
	})
	b.conn.OnResponse(func(resp h1.Response) { b.onResponse() })
	b.tls.OnRecord(func(ct tlsrec.ContentType, payload []byte) {
		if ct != tlsrec.ContentApplicationData {
			return
		}
		if err := b.conn.Feed(payload); err != nil && b.fatalErr == nil {
			b.fatalErr = err
		}
	})
	tcp.OnData(func(buf []byte) {
		if err := b.tls.Feed(buf); err != nil && b.fatalErr == nil {
			b.fatalErr = err
		}
	})
	tcp.OnStateChange(func(state tcpsim.State) {
		if state == tcpsim.StateEstablished {
			b.tls.Start()
		}
	})
	b.tls.OnEstablished(func() { b.issueNext() })
	return b, nil
}

// Start opens the connection; the sequential page load runs to completion.
func (b *H1Browser) Start() { b.tcp.Connect() }

// Err returns the first fatal error.
func (b *H1Browser) Err() error { return b.fatalErr }

// Completed maps object id → completion time.
func (b *H1Browser) Completed() map[string]time.Duration { return b.completed }

// Done reports whether the whole plan finished.
func (b *H1Browser) Done() bool { return b.nextStep >= len(b.plan.Steps) }

func (b *H1Browser) issueNext() {
	if b.nextStep >= len(b.plan.Steps) || b.fatalErr != nil {
		return
	}
	step := b.plan.Steps[b.nextStep]
	obj := b.site.Object(step.ObjectID)
	b.conn.Request("GET", b.site.Host, obj.Path)
}

func (b *H1Browser) onResponse() {
	step := b.plan.Steps[b.nextStep]
	b.completed[step.ObjectID] = b.sched.Now()
	b.nextStep++
	if b.nextStep < len(b.plan.Steps) {
		gap := b.plan.Steps[b.nextStep].Gap
		b.sched.After(gap, func() { b.issueNext() })
	}
}
