package endpoint

import (
	"strings"
	"testing"
	"time"

	"h2privacy/internal/h2"
	"h2privacy/internal/metrics"
	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/website"
)

// buildPair assembles server+browser over a fresh path with custom configs.
func buildPair(t *testing.T, seed int64, link netsim.LinkConfig, scfg ServerConfig, bcfg BrowserConfig, perm []int) (*simtime.Scheduler, *Server, *Browser) {
	t.Helper()
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(seed)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	site := website.ISideWith()
	plan, err := site.PlanFor(perm)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sched, rng.Fork(), pair.Server, site, scfg)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewBrowser(sched, rng.Fork(), pair.Client, site, plan, bcfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cli.Start()
	return sched, srv, cli
}

func TestServerPushDefense(t *testing.T) {
	sched, srv, cli := buildPair(t, 3, goodLink(),
		ServerConfig{PushEmblems: true},
		BrowserConfig{AcceptPush: true},
		identityPerm)
	sched.RunUntil(60 * time.Second)
	if cli.Result().Broken {
		t.Fatalf("broken: %s", cli.Result().BrokenReason)
	}
	if !cli.Done() {
		t.Fatalf("completed %d/%d", len(cli.Result().Completed), 48)
	}
	// Every emblem must have arrived via push, not GET.
	pushed := map[string]bool{}
	for _, ev := range cli.Result().Requests {
		if ev.Kind == RequestPushed {
			pushed[ev.ObjectID] = true
		}
		if ev.Kind == RequestInitial && strings.HasPrefix(ev.ObjectID, "emblem-") {
			t.Fatalf("emblem %s was requested despite push", ev.ObjectID)
		}
	}
	if len(pushed) != website.PartyCount {
		t.Fatalf("pushed %d emblems, want %d", len(pushed), website.PartyCount)
	}
	// Pushed emblems leave together: they should interleave heavily.
	dom := metrics.BestDoMPerObject(srv.TxLog())
	interleaved := 0
	for p := 0; p < website.PartyCount; p++ {
		if dom[website.EmblemID(p)] > 0 {
			interleaved++
		}
	}
	if interleaved < website.PartyCount/2 {
		t.Fatalf("only %d pushed emblems interleaved", interleaved)
	}
}

func TestServerPushRefusedWithoutAcceptPush(t *testing.T) {
	sched, srv, cli := buildPair(t, 4, goodLink(),
		ServerConfig{PushEmblems: true},
		BrowserConfig{}, // push not accepted
		identityPerm)
	sched.RunUntil(60 * time.Second)
	if cli.Result().Broken {
		t.Fatalf("broken: %s", cli.Result().BrokenReason)
	}
	if !cli.Done() {
		t.Fatalf("completed %d/%d", len(cli.Result().Completed), 48)
	}
	// All emblems arrive via ordinary GETs; no pushes recorded.
	for _, ev := range cli.Result().Requests {
		if ev.Kind == RequestPushed {
			t.Fatalf("push adopted despite ENABLE_PUSH=0: %v", ev)
		}
	}
	_ = srv
}

func TestDynamicRenderCache(t *testing.T) {
	// Serve the quiz twice: the first serving pays the render cost, the
	// second (fresh stream) hits the cache and starts much sooner.
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(5)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: goodLink()})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	site := website.ISideWith()
	srv, err := NewServer(sched, rng.Fork(), pair.Server, site, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Drive the server with a bare h2 client stack.
	cli, err := newStack(pair.Client, true, rng.Fork(), h2.Config{}, func(error) {})
	if err != nil {
		t.Fatal(err)
	}
	firstByte := map[uint32]time.Duration{}
	reqAt := map[uint32]time.Duration{}
	cli.h2c.SetHandlers(h2.Handlers{
		OnStreamData: func(s *h2.Stream, data []byte, endStream bool) {
			if _, ok := firstByte[s.ID()]; !ok {
				firstByte[s.ID()] = sched.Now()
			}
		},
	})
	quizPath := site.Object(website.TargetID).Path
	get := func() {
		s, err := cli.h2c.OpenStream([]h2.HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: site.Host},
			{Name: ":path", Value: quizPath},
		}, true, h2.PriorityParam{})
		if err != nil {
			t.Error(err)
			return
		}
		reqAt[s.ID()] = sched.Now()
	}
	pair.Client.OnStateChange(func(st tcpsim.State) {
		if st == tcpsim.StateEstablished {
			cli.tls.Start()
		}
	})
	cli.onEstablished = func() { get() }
	srv.Start()
	cli.h2c.Start()
	pair.Client.Connect()
	sched.After(2*time.Second, get)
	sched.RunUntil(10 * time.Second)
	if len(firstByte) != 2 {
		t.Fatalf("got %d responses", len(firstByte))
	}
	var ttfb []time.Duration
	for id, at := range firstByte {
		ttfb = append(ttfb, at-reqAt[id])
	}
	slow, fast := ttfb[0], ttfb[1]
	if slow < fast {
		slow, fast = fast, slow
	}
	if slow < 50*time.Millisecond {
		t.Fatalf("first render too fast: %v", slow)
	}
	if fast > 50*time.Millisecond {
		t.Fatalf("cached render too slow: %v", fast)
	}
}

func TestServerBackpressurePausesTasks(t *testing.T) {
	// A very slow link with a tiny buffer limit: the server must not
	// buffer the whole page into TCP.
	link := netsim.LinkConfig{BandwidthBps: 2e6, PropDelay: 8 * time.Millisecond} // 2 Mbps
	sched, srv, cli := buildPair(t, 6, link,
		ServerConfig{SendBufLimit: 32 << 10},
		BrowserConfig{ResetTimeout: time.Hour, RetryTimeout: time.Hour},
		identityPerm)
	maxBuffered := 0
	probe := func() {}
	probe = func() {
		if b := srv.stack.tcp.Buffered(); b > maxBuffered {
			maxBuffered = b
		}
		sched.After(20*time.Millisecond, probe)
	}
	sched.After(0, probe)
	sched.RunUntil(30 * time.Second)
	if maxBuffered > 48<<10 {
		t.Fatalf("send buffer reached %d bytes despite 32KiB limit", maxBuffered)
	}
	_ = cli
}

func TestH1EndpointsServeFullPage(t *testing.T) {
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(7)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: goodLink()})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	site := website.ISideWith()
	plan, err := site.PlanFor(identityPerm)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewH1Server(sched, rng.Fork(), pair.Server, site, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewH1Browser(sched, rng.Fork(), pair.Client, site, plan)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cli.Start()
	sched.RunUntil(120 * time.Second)
	if srv.Err() != nil || cli.Err() != nil {
		t.Fatalf("errors: %v / %v", srv.Err(), cli.Err())
	}
	if !cli.Done() {
		t.Fatalf("completed %d/%d", len(cli.Completed()), len(plan.Steps))
	}
	// Sequential protocol: everything serialized, spans strictly ordered.
	dom := metrics.BestDoMPerObject(srv.TxLog())
	for _, o := range site.Objects {
		if dom[o.ID] != 0 {
			t.Fatalf("object %s multiplexed over HTTP/1.1 (dom=%v)", o.ID, dom[o.ID])
		}
	}
	// Completion order matches plan order.
	var last time.Duration
	for _, step := range plan.Steps {
		at := cli.Completed()[step.ObjectID]
		if at < last {
			t.Fatalf("object %s completed out of order", step.ObjectID)
		}
		last = at
	}
}

func TestPaddingChangesWireNotDoM(t *testing.T) {
	scfg := ServerConfig{}
	scfg.H2.PadData = func(n int) int { return 37 }
	sched, srv, cli := buildPair(t, 8, goodLink(), scfg, BrowserConfig{}, identityPerm)
	sched.RunUntil(60 * time.Second)
	if !cli.Done() {
		t.Fatalf("completed %d/48 with padding", len(cli.Result().Completed))
	}
	// Ground truth spans count plaintext bytes only: sums still exact.
	byInstance := map[string]int{}
	for _, span := range srv.TxLog() {
		byInstance[span.Instance] += span.Len
	}
	site := website.ISideWith()
	for _, o := range site.Objects {
		if got := byInstance[o.ID+"#0"]; got != o.Size {
			t.Fatalf("object %s: %d bytes in tx log, want %d", o.ID, got, o.Size)
		}
	}
}

func TestBrowserRetryCap(t *testing.T) {
	// Black-hole everything server→client: the browser may retry each
	// fetch at most MaxRetries times before the reset machinery (here
	// disabled) would take over.
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(31)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: goodLink()})
	if err != nil {
		t.Fatal(err)
	}
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*tcpsim.Segment)
		return netsim.Verdict{Drop: len(seg.Payload) > 0 && now > 100*time.Millisecond}
	}))
	pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{MaxRetries: 50})
	if err != nil {
		t.Fatal(err)
	}
	site := website.ISideWith()
	plan, err := site.PlanFor(identityPerm)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sched, rng.Fork(), pair.Server, site, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewBrowser(sched, rng.Fork(), pair.Client, site, plan, BrowserConfig{
		RetryTimeout: 200 * time.Millisecond,
		MaxRetries:   2,
		ResetTimeout: time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cli.Start()
	sched.RunUntil(20 * time.Second)
	// Count retries per object: none may exceed MaxRetries.
	perObj := map[string]int{}
	for _, ev := range cli.Result().Requests {
		if ev.Kind == RequestRetry {
			perObj[ev.ObjectID]++
		}
	}
	for id, n := range perObj {
		if n > 2 {
			t.Fatalf("object %s retried %d times (cap 2)", id, n)
		}
	}
	if len(perObj) == 0 {
		t.Fatal("no retries despite a black-holed response path")
	}
}

func TestBrowserResetBudgetBreaks(t *testing.T) {
	// Permanently dead response path with aggressive reset settings:
	// the browser must give up after MaxResets cycles.
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(33)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: goodLink()})
	if err != nil {
		t.Fatal(err)
	}
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*tcpsim.Segment)
		return netsim.Verdict{Drop: len(seg.Payload) > 0 && now > 100*time.Millisecond}
	}))
	pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{MaxRetries: 100, MaxRTO: 500 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	site := website.ISideWith()
	plan, err := site.PlanFor(identityPerm)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(sched, rng.Fork(), pair.Server, site, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	cli, err := NewBrowser(sched, rng.Fork(), pair.Client, site, plan, BrowserConfig{
		RetryTimeout: time.Hour,
		ResetTimeout: 500 * time.Millisecond,
		MaxResets:    2,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	cli.Start()
	sched.RunUntil(60 * time.Second)
	res := cli.Result()
	if !res.Broken {
		t.Fatalf("browser never gave up (resets=%d)", res.Resets)
	}
	if res.Resets != 2 {
		t.Fatalf("resets = %d, want exactly the budget", res.Resets)
	}
}

func TestBrowserTriggerStepsWaitForDependency(t *testing.T) {
	// The emblem steps must not be issued before results-js completes.
	sched, srv, cli := buildPair(t, 35, goodLink(), ServerConfig{}, BrowserConfig{}, identityPerm)
	sched.RunUntil(60 * time.Second)
	_ = srv
	res := cli.Result()
	resultsDone := res.Completed[website.ResultsJSID]
	if resultsDone == 0 {
		t.Fatal("results-js never completed")
	}
	for _, ev := range res.Requests {
		if ev.Kind == RequestInitial && strings.HasPrefix(ev.ObjectID, "emblem-") {
			if ev.Time < resultsDone {
				t.Fatalf("emblem %s requested at %v, before results-js done at %v", ev.ObjectID, ev.Time, resultsDone)
			}
		}
	}
}
