package endpoint

import (
	"fmt"
	"strconv"
	"time"

	"h2privacy/internal/h2"
	"h2privacy/internal/metrics"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

// ServerConfig tunes the simulated web server's threading model.
type ServerConfig struct {
	// ChunkSize is how many object bytes each "thread" enqueues per step
	// (one DATA frame → one TLS record → ≈ one TCP segment). Default 1200.
	ChunkSize int
	// ChunkDelayMedian is the median per-chunk service time (disk/CPU +
	// write pacing); log-normal with ChunkDelaySigma. Default 700 µs.
	ChunkDelayMedian time.Duration
	// ChunkDelaySigma is the service-time spread. Default 0.6.
	ChunkDelaySigma float64
	// DispatchDelay is the median request-to-first-work latency for
	// static objects (cache hits). Default 1.5 ms.
	DispatchDelay time.Duration
	// DynamicDispatch is the median time to begin rendering a dynamic
	// (server-generated) page. Default 180 ms (log-normal, sigma 0.5).
	DynamicDispatch time.Duration
	// DynamicChunkDelay is the median per-chunk streaming time for
	// dynamic pages, which render incrementally. Default 2.5 ms: the quiz
	// HTML streams out over ~20-30 ms after dispatch, and baseline
	// multiplexing comes from neighbouring objects' bursts colliding
	// with that window.
	DynamicChunkDelay time.Duration
	// PushEmblems enables the §VII server-push defense: when the results
	// script is requested, the server pushes all eight emblem images
	// unprompted, in catalog (not preference) order. The adversary's GET
	// counting and request spacing have no handle on pushed objects, and
	// the push order is independent of the user's ranking.
	PushEmblems bool
	// SendBufLimit caps the socket-buffer backpressure point: tasks pause
	// while the transport holds more unacknowledged bytes than the
	// effective limit, which autotunes to 2×cwnd (clamped to
	// [16 KiB, SendBufLimit]) the way Linux sndbuf autotuning tracks the
	// congestion window. When losses collapse cwnd, writes block early
	// and almost nothing is queued beyond recall — which is why the
	// paper's RST_STREAM flush (§IV-D) leaves the wire nearly clean.
	// Default 256 KiB (nginx-scale socket buffers; also bounds how much
	// data a reset cannot recall from the kernel).
	SendBufLimit int
	// H2 tunes the server's HTTP/2 endpoint.
	H2 h2.Config
	// Tracer, when non-nil, arms server-layer tracing (task lifecycle).
	Tracer *trace.Tracer
}

func (c ServerConfig) withDefaults() ServerConfig {
	if c.ChunkSize == 0 {
		c.ChunkSize = 1200
	}
	if c.ChunkDelayMedian == 0 {
		c.ChunkDelayMedian = 700 * time.Microsecond
	}
	if c.ChunkDelaySigma == 0 {
		c.ChunkDelaySigma = 0.6
	}
	if c.DispatchDelay == 0 {
		c.DispatchDelay = 1500 * time.Microsecond
	}
	if c.DynamicDispatch == 0 {
		c.DynamicDispatch = 180 * time.Millisecond
	}
	if c.DynamicChunkDelay == 0 {
		c.DynamicChunkDelay = 2500 * time.Microsecond
	}
	if c.SendBufLimit == 0 {
		c.SendBufLimit = 256 << 10
	}
	if c.H2.MaxConcurrentStreams == 0 {
		c.H2.MaxConcurrentStreams = 128 // nginx's http2_max_concurrent_streams
	}
	return c
}

// task is one logical server thread serving one object on one stream
// (paper Fig. 3: Thread#1, Thread#2, …).
type task struct {
	stream   *h2.Stream
	obj      *website.Object
	instance string
	body     []byte
	sent     int
	headers  bool
	waiting  bool // blocked on flow control
	waitBuf  bool // blocked on the socket send buffer
	cached   bool // dynamic object already rendered once (server cache)
	ev       *simtime.Event
}

// Server is the simulated multi-threaded HTTP/2 web server.
type Server struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	site  *website.Site
	cfg   ServerConfig
	stack *stack

	tasks       map[uint32]*task
	prio        *h2.PriorityTree // deterministic, priority-ordered resumption
	instances   map[string]int
	rendered    map[string]bool // dynamic pages already generated (cache)
	txLog       []metrics.TxSpan
	payloadOff  int64
	fatalErr    error
	activePeak  int
	tasksServed int

	tr *trace.Tracer
}

// NewServer builds the server endpoint over its TCP connection.
func NewServer(sched *simtime.Scheduler, rng *simtime.Rand, tcp *tcpsim.Conn, site *website.Site, cfg ServerConfig) (*Server, error) {
	if site == nil {
		return nil, fmt.Errorf("endpoint: NewServer requires a site")
	}
	srv := &Server{
		sched:     sched,
		rng:       rng,
		site:      site,
		cfg:       cfg.withDefaults(),
		tasks:     make(map[uint32]*task),
		prio:      h2.NewPriorityTree(),
		instances: make(map[string]int),
		rendered:  make(map[string]bool),
	}
	srv.tr = srv.cfg.Tracer
	st, err := newStack(tcp, false, rng, srv.cfg.H2, func(err error) {
		if srv.fatalErr == nil {
			srv.fatalErr = err
		}
	})
	if err != nil {
		return nil, err
	}
	srv.stack = st
	srv.instrumentOutput()
	st.h2c.SetHandlers(h2.Handlers{
		OnStreamHeaders:   srv.onRequest,
		OnStreamReset:     srv.onReset,
		OnWindowAvailable: srv.onWindow,
	})
	tcp.OnSendBufDrain(srv.onSendBufDrain)
	return srv, nil
}

// Start begins listening (TCP passive open) and arms the h2 endpoint.
func (s *Server) Start() {
	s.stack.tcp.Listen()
	s.stack.h2c.Start()
}

// Err returns the first fatal transport/protocol error, or nil.
func (s *Server) Err() error { return s.fatalErr }

// TxLog returns the ground-truth transmission log (one span per DATA
// frame, offsets in cumulative sent payload bytes).
func (s *Server) TxLog() []metrics.TxSpan { return s.txLog }

// ActivePeak reports the maximum number of concurrently active tasks —
// the "number of HTTP/2 objects processed by the server at an instant".
func (s *Server) ActivePeak() int { return s.activePeak }

// TasksServed reports how many stream-serving tasks were created,
// including duplicate servings of re-requested objects.
func (s *Server) TasksServed() int { return s.tasksServed }

// H2Stats exposes the server's frame counters.
func (s *Server) H2Stats() h2.ConnStats { return s.stack.h2c.Stats() }

// instrumentOutput wraps the h2 output path to record each DATA frame's
// position in the ordered application byte stream. Only the 9-byte header
// (plus the pad-length octet) is examined: a full ParseFrame per frame
// would allocate a decoded Frame just to read its length.
func (s *Server) instrumentOutput() {
	s.stack.tapH2Out = func(frame []byte) {
		hdr, ok := h2.ParseFrameHeader(frame)
		if !ok || hdr.Type != h2.FrameData {
			return
		}
		t := s.tasks[hdr.StreamID]
		if t == nil {
			return
		}
		// Payload length minus padding (one pad-length octet plus the pad
		// bytes) — the same arithmetic the full decoder's stripPadding does.
		dataLen := hdr.Length
		if hdr.Flags.Has(h2.FlagPadded) && hdr.Length >= 1 {
			dataLen -= 1 + int(frame[h2.FrameHeaderSize])
			if dataLen < 0 {
				return // malformed; the peer's decoder would reject it
			}
		}
		s.txLog = append(s.txLog, metrics.TxSpan{
			Instance: t.instance,
			ObjectID: t.obj.ID,
			Offset:   s.payloadOff,
			Len:      dataLen,
			At:       s.sched.Now(),
		})
		s.payloadOff += int64(dataLen)
	}
}

// onRequest spawns a task ("thread") for an incoming GET.
func (s *Server) onRequest(stream *h2.Stream, fields []h2.HeaderField, endStream bool) {
	var path string
	for _, f := range fields {
		if f.Name == ":path" {
			path = f.Value
		}
	}
	obj := s.site.Lookup(path)
	if obj == nil {
		_ = stream.SendHeaders([]h2.HeaderField{{Name: ":status", Value: "404"}}, true)
		return
	}
	s.spawn(stream, obj)
	if s.cfg.PushEmblems && obj.ID == website.ResultsJSID {
		s.pushEmblems(stream)
	}
}

// spawn creates and schedules the serving task ("thread") for obj.
func (s *Server) spawn(stream *h2.Stream, obj *website.Object) {
	inst := fmt.Sprintf("%s#%d", obj.ID, s.instances[obj.ID])
	s.instances[obj.ID]++
	s.tasksServed++
	t := &task{stream: stream, obj: obj, instance: inst, body: s.site.Body(obj)}
	s.tasks[stream.ID()] = t
	if s.tr.Enabled() {
		s.tr.Emit(trace.LayerServer, "task-spawn",
			trace.Str("instance", inst), trace.Num("stream", int64(stream.ID())),
			trace.Num("size", int64(len(t.body))))
	}
	_ = s.prio.Add(stream.ID(), stream.Priority())
	if n := len(s.tasks); n > s.activePeak {
		s.activePeak = n
	}
	// Request parsing + dispatch latency before the thread's first step;
	// dynamic pages pay the render startup cost the first time, then hit
	// the server-side render cache.
	dispatch := s.cfg.DispatchDelay
	sigma := s.cfg.ChunkDelaySigma
	if obj.Dynamic {
		if s.rendered[obj.ID] {
			t.cached = true
		} else {
			dispatch = s.cfg.DynamicDispatch
			sigma = 0.5
		}
	}
	t.ev = s.sched.After(s.rng.LogNormal(dispatch, sigma), func() {
		s.rendered[obj.ID] = true
		s.step(t)
	})
}

// pushEmblems implements the §VII server-push defense: promise and serve
// every emblem on the results script's request, in catalog order, so the
// emblem traffic carries no information about the user's ranking and the
// adversary's request-spacing lever never sees emblem GETs.
func (s *Server) pushEmblems(parent *h2.Stream) {
	for p := 0; p < website.PartyCount; p++ {
		obj := s.site.Object(website.EmblemID(p))
		promised, err := s.stack.h2c.Push(parent, []h2.HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":scheme", Value: "https"},
			{Name: ":authority", Value: s.site.Host},
			{Name: ":path", Value: obj.Path},
		})
		if err != nil {
			return // peer disabled push
		}
		s.spawn(promised, obj)
	}
}

// step performs one thread quantum: enqueue one chunk of the object.
func (s *Server) step(t *task) {
	t.ev = nil
	if s.tasks[t.stream.ID()] != t {
		return // reset raced with the scheduled step
	}
	// Socket-buffer backpressure: a real write would block here.
	if s.stack.tcp.Buffered() > s.effectiveSendBuf() {
		t.waitBuf = true
		s.prio.SetReady(t.stream.ID(), true)
		return
	}
	if !t.headers {
		t.headers = true
		err := t.stream.SendHeaders([]h2.HeaderField{
			{Name: ":status", Value: "200"},
			{Name: "content-type", Value: t.obj.Type},
			{Name: "content-length", Value: strconv.Itoa(len(t.body))},
		}, false)
		if err != nil {
			s.finish(t)
			return
		}
	}
	remaining := len(t.body) - t.sent
	chunk := s.cfg.ChunkSize
	if chunk > remaining {
		chunk = remaining
	}
	last := chunk == remaining
	n, err := t.stream.SendData(t.body[t.sent:t.sent+chunk], last)
	if err != nil {
		s.finish(t)
		return
	}
	t.sent += n
	if t.sent == len(t.body) {
		s.finish(t)
		return
	}
	if n < chunk {
		// Flow control blocked: wait for a window update.
		t.waiting = true
		s.prio.SetReady(t.stream.ID(), true)
		return
	}
	delay := s.cfg.ChunkDelayMedian
	if t.obj.Dynamic && !t.cached {
		delay = s.cfg.DynamicChunkDelay
	}
	t.ev = s.sched.After(s.rng.LogNormal(delay, s.cfg.ChunkDelaySigma), func() {
		s.step(t)
	})
}

func (s *Server) finish(t *task) {
	if t.ev != nil {
		s.sched.Cancel(t.ev)
		t.ev = nil
	}
	if s.tr.Enabled() {
		s.tr.Emit(trace.LayerServer, "task-finish",
			trace.Str("instance", t.instance), trace.Num("stream", int64(t.stream.ID())),
			trace.Num("sent", int64(t.sent)), trace.Num("size", int64(len(t.body))))
	}
	delete(s.tasks, t.stream.ID())
	s.prio.Remove(t.stream.ID())
}

// onReset implements the §IV-D server behaviour: the stream's queued
// segments are flushed immediately (the task dies, no more chunks).
func (s *Server) onReset(stream *h2.Stream, code h2.ErrCode, remote bool) {
	if t := s.tasks[stream.ID()]; t != nil {
		s.finish(t)
	}
}

// resume re-schedules a paused task immediately.
func (s *Server) resume(t *task) {
	if t.ev != nil {
		return
	}
	t.waiting = false
	t.waitBuf = false
	s.prio.SetReady(t.stream.ID(), false)
	t.ev = s.sched.After(0, func() { s.step(t) })
}

// resumeBlocked wakes paused tasks matching keep, in priority-tree order
// (deterministic and honoring stream weights/dependencies). Non-matching
// ready tasks are skipped and stay ready.
func (s *Server) resumeBlocked(keep func(*task) bool) {
	var wake, skipped []*task
	for {
		id, ok := s.prio.Next()
		if !ok {
			break
		}
		t := s.tasks[id]
		s.prio.SetReady(id, false)
		if t == nil {
			s.prio.Remove(id)
			continue
		}
		if keep(t) {
			wake = append(wake, t)
		} else {
			skipped = append(skipped, t)
		}
	}
	for _, t := range skipped {
		s.prio.SetReady(t.stream.ID(), true)
	}
	for _, t := range wake {
		s.resume(t)
	}
}

// onWindow resumes tasks blocked on flow control.
func (s *Server) onWindow(stream *h2.Stream) {
	if stream != nil {
		if t := s.tasks[stream.ID()]; t != nil && t.waiting && t.ev == nil {
			s.resume(t)
		}
		return
	}
	s.resumeBlocked(func(t *task) bool { return t.waiting })
}

// effectiveSendBuf is the autotuned admission limit: 2×cwnd clamped to
// [16 KiB, SendBufLimit].
func (s *Server) effectiveSendBuf() int {
	limit := 2 * s.stack.tcp.Cwnd()
	if min := 16 << 10; limit < min {
		limit = min
	}
	if limit > s.cfg.SendBufLimit {
		limit = s.cfg.SendBufLimit
	}
	return limit
}

// onSendBufDrain resumes tasks blocked on the socket buffer once it has
// drained below the limit.
func (s *Server) onSendBufDrain() {
	if s.stack.tcp.Buffered() > s.effectiveSendBuf() {
		return
	}
	s.resumeBlocked(func(t *task) bool { return t.waitBuf })
}
