package endpoint

import (
	"fmt"
	"slices"
	"time"

	"h2privacy/internal/flowseq"
	"h2privacy/internal/h2"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

// BrowserConfig tunes the browser model.
type BrowserConfig struct {
	// RetryTimeout: a request whose response has not started after this
	// long is re-issued on a fresh stream (the duplicate GETs behind the
	// paper's §IV-B "retransmission requests", which the server answers
	// with duplicate copies). Default 300 ms.
	RetryTimeout time.Duration
	// MaxRetries bounds duplicate GETs per object. Default 3.
	MaxRetries int
	// ResetTimeout: when no response byte arrives on any open fetch for
	// this long, the browser resets all open streams and re-requests what
	// it still needs (§IV-D). Doubles after each reset, mirroring the
	// client backing off. Default 5 s (the paper's client reset after
	// ≈6 s of drops).
	ResetTimeout time.Duration
	// MaxResets bounds reset cycles before declaring the load broken.
	// Default 4.
	MaxResets int
	// ReRequestDelay is the think time between a reset cycle and the
	// first re-request: the browser re-parses and re-discovers what it
	// needs. Default 1.2 s (mass-cancel on a large page forces a full
	// re-layout before fetches restart).
	ReRequestDelay time.Duration
	// ReRequestGap spaces successive re-requests after a reset (resources
	// are re-discovered progressively, highest priority first — the
	// paper's "client resends GET requests if a high priority object is
	// not yet received"). Default 300 ms.
	ReRequestGap time.Duration
	// AcceptPush advertises ENABLE_PUSH and adopts pushed streams for
	// objects the plan wants (needed for the §VII server-push defense).
	AcceptPush bool
	// ConnWindow is the connection-level receive window the browser
	// raises to after SETTINGS (Firefox ≈12 MiB). Default 8 MiB.
	ConnWindow uint32
	// H2 tunes the client HTTP/2 endpoint. InitialWindowSize defaults to
	// 1 MiB here (browser-like), not the RFC 65535.
	H2 h2.Config
	// Tracer, when non-nil, arms browser-layer tracing (requests, resets,
	// completions).
	Tracer *trace.Tracer
	// Flows, when non-nil, receives request/object-done annotations so the
	// flowseq analyzer can label per-stream features with object IDs and
	// request kinds. Set H2.Flows on the same config to feed it frames.
	Flows *flowseq.Analyzer
}

func (c BrowserConfig) withDefaults() BrowserConfig {
	if c.RetryTimeout == 0 {
		c.RetryTimeout = time.Second
	}
	if c.MaxRetries == 0 {
		c.MaxRetries = 3
	}
	if c.ResetTimeout == 0 {
		c.ResetTimeout = 5 * time.Second
	}
	if c.MaxResets == 0 {
		c.MaxResets = 4
	}
	if c.ReRequestDelay == 0 {
		c.ReRequestDelay = 1200 * time.Millisecond
	}
	if c.ReRequestGap == 0 {
		c.ReRequestGap = 300 * time.Millisecond
	}
	if c.ConnWindow == 0 {
		c.ConnWindow = 8 << 20
	}
	if c.H2.InitialWindowSize == 0 {
		c.H2.InitialWindowSize = 1 << 20
	}
	if c.AcceptPush {
		c.H2.EnablePush = true
	}
	return c
}

// RequestKind classifies entries of the browser's request log.
type RequestKind int

// Request kinds.
const (
	RequestInitial   RequestKind = iota + 1 // first, plan-scheduled request
	RequestRetry                            // duplicate GET for a stalled response
	RequestReRequest                        // re-request after a reset cycle
	RequestPushed                           // server push adopted in place of a GET
)

// String names the kind.
func (k RequestKind) String() string {
	switch k {
	case RequestInitial:
		return "initial"
	case RequestRetry:
		return "retry"
	case RequestReRequest:
		return "re-request"
	case RequestPushed:
		return "pushed"
	default:
		return "kind?"
	}
}

// RequestEvent is one entry of the browser request log.
type RequestEvent struct {
	Time     time.Duration
	ObjectID string
	StreamID uint32
	Kind     RequestKind
}

// fetch tracks one object the browser wants.
type fetch struct {
	obj       *website.Object
	issued    bool
	started   bool // first response byte seen
	done      bool
	doneAt    time.Duration
	retries   int
	streams   map[uint32]int // stream id → bytes received on it
	retryEv   *simtime.Event
	triggered []int // plan step indices waiting on this object's completion
	// deadlineFrom anchors the completion deadline: the fetch must finish
	// within the browser's (backed-off) patience of this instant or the
	// reset cycle fires.
	deadlineFrom time.Duration
}

// Result summarizes one page load.
type Result struct {
	// Completed maps object id → completion time.
	Completed map[string]time.Duration
	// Requests is the full request log, in issuance order.
	Requests []RequestEvent
	// AppRetries counts duplicate GETs for stalled responses.
	AppRetries int
	// Resets counts §IV-D reset cycles (all open streams RST + re-request).
	Resets int
	// Broken reports a dead transport or reset budget exhaustion.
	Broken bool
	// BrokenReason explains Broken.
	BrokenReason string
}

// Browser is the simulated client driving one page load.
type Browser struct {
	sched *simtime.Scheduler
	rng   *simtime.Rand
	site  *website.Site
	plan  *website.Plan
	cfg   BrowserConfig
	stack *stack

	fetches  map[string]*fetch // by object id
	byStream map[uint32]*fetch
	result   Result

	started      bool
	lastProgress time.Duration
	resetWait    time.Duration
	retryWait    time.Duration
	stallEv      *simtime.Event
	finished     bool

	tr *trace.Tracer
	fl *flowseq.Analyzer
}

// NewBrowser builds the browser endpoint over its TCP connection.
func NewBrowser(sched *simtime.Scheduler, rng *simtime.Rand, tcp *tcpsim.Conn, site *website.Site, plan *website.Plan, cfg BrowserConfig) (*Browser, error) {
	if site == nil || plan == nil {
		return nil, fmt.Errorf("endpoint: NewBrowser requires a site and plan")
	}
	b := &Browser{
		sched:    sched,
		rng:      rng,
		site:     site,
		plan:     plan,
		cfg:      cfg.withDefaults(),
		fetches:  make(map[string]*fetch),
		byStream: make(map[uint32]*fetch),
		result:   Result{Completed: make(map[string]time.Duration)},
	}
	b.resetWait = b.cfg.ResetTimeout
	b.retryWait = b.cfg.RetryTimeout
	b.tr = b.cfg.Tracer
	b.fl = b.cfg.Flows
	st, err := newStack(tcp, true, rng, b.cfg.H2, func(err error) { b.break_(err.Error()) })
	if err != nil {
		return nil, err
	}
	b.stack = st
	st.h2c.SetHandlers(h2.Handlers{
		OnStreamHeaders: func(s *h2.Stream, fields []h2.HeaderField, endStream bool) {
			b.onResponseEvent(s, 0, endStream)
		},
		OnStreamData: func(s *h2.Stream, data []byte, endStream bool) {
			b.onResponseEvent(s, len(data), endStream)
		},
		OnStreamReset: func(s *h2.Stream, code h2.ErrCode, remote bool) {
			delete(b.byStream, s.ID())
		},
		OnPushPromise: func(parent, promised *h2.Stream, fields []h2.HeaderField) {
			b.onPush(promised, fields)
		},
	})
	tcp.OnStateChange(func(state tcpsim.State) {
		switch state {
		case tcpsim.StateEstablished:
			if !b.started {
				b.started = true
				st.tls.Start()
			}
		case tcpsim.StateBroken:
			b.break_("transport: " + tcp.Err().Error())
		}
	})
	st.onEstablished = func() {
		st.h2c.RaiseConnWindow(b.cfg.ConnWindow)
		b.lastProgress = sched.Now()
		b.armStallCheck()
		b.issueStep(0)
	}
	return b, nil
}

// Start opens the TCP connection; the page load proceeds automatically.
func (b *Browser) Start() {
	b.stack.h2c.Start() // queued until the TLS handshake completes
	b.stack.tcp.Connect()
}

// Result returns the page-load summary (valid any time; final once the
// simulation quiesces).
func (b *Browser) Result() *Result { return &b.result }

// Done reports whether every planned object completed.
func (b *Browser) Done() bool {
	return len(b.result.Completed) == len(b.plan.Steps)
}

// H2Stats exposes the client's frame counters.
func (b *Browser) H2Stats() h2.ConnStats { return b.stack.h2c.Stats() }

// break_ marks the load broken and stops all timers.
func (b *Browser) break_(reason string) {
	if b.finished || b.result.Broken {
		return
	}
	b.result.Broken = true
	b.result.BrokenReason = reason
	if b.tr.Enabled() {
		b.tr.Emit(trace.LayerBrowser, "broken", trace.Str("reason", reason))
	}
	b.cancelTimers()
}

func (b *Browser) cancelTimers() {
	if b.stallEv != nil {
		b.sched.Cancel(b.stallEv)
		b.stallEv = nil
	}
	for _, f := range b.fetches {
		if f.retryEv != nil {
			b.sched.Cancel(f.retryEv)
			f.retryEv = nil
		}
	}
}

// issueStep issues the plan step at index i (if due) and schedules its
// successor.
func (b *Browser) issueStep(i int) {
	if b.result.Broken || i >= len(b.plan.Steps) {
		return
	}
	step := b.plan.Steps[i]
	f := b.ensureFetch(step.ObjectID)
	if !f.issued {
		f.issued = true
		b.request(f, RequestInitial)
	}
	// Chain or register the next step.
	next := i + 1
	if next >= len(b.plan.Steps) {
		return
	}
	ns := b.plan.Steps[next]
	if ns.TriggerDone == "" {
		b.sched.After(ns.Gap, func() { b.issueStep(next) })
		return
	}
	dep := b.ensureFetch(ns.TriggerDone)
	if dep.done {
		b.sched.After(ns.Gap, func() { b.issueStep(next) })
		return
	}
	dep.triggered = append(dep.triggered, next)
}

func (b *Browser) ensureFetch(objectID string) *fetch {
	if f := b.fetches[objectID]; f != nil {
		return f
	}
	obj := b.site.Object(objectID)
	if obj == nil {
		panic("endpoint: plan references unknown object " + objectID)
	}
	f := &fetch{obj: obj, streams: make(map[uint32]int)}
	b.fetches[objectID] = f
	return f
}

// request opens a stream for the fetch.
func (b *Browser) request(f *fetch, kind RequestKind) {
	if b.result.Broken || f.done {
		return
	}
	fields := []h2.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: b.site.Host},
		{Name: ":path", Value: f.obj.Path},
	}
	s, err := b.stack.h2c.OpenStream(fields, true, h2.PriorityParam{})
	if err != nil {
		b.break_("open stream: " + err.Error())
		return
	}
	f.streams[s.ID()] = 0
	if kind != RequestRetry {
		// A fresh (or re-)request restarts the completion deadline; a
		// retry does not — the object is still starving.
		f.deadlineFrom = b.sched.Now()
	}
	b.byStream[s.ID()] = f
	b.result.Requests = append(b.result.Requests, RequestEvent{
		Time:     b.sched.Now(),
		ObjectID: f.obj.ID,
		StreamID: s.ID(),
		Kind:     kind,
	})
	if b.tr.Enabled() {
		b.tr.Emit(trace.LayerBrowser, "request",
			trace.Str("object", f.obj.ID), trace.Num("stream", int64(s.ID())),
			trace.Str("kind", kind.String()))
	}
	if b.fl.Enabled() {
		b.fl.Request(f.obj.ID, s.ID(), kind.String())
	}
	b.armRetry(f)
}

// armRetry schedules the duplicate-GET timer for a not-yet-started fetch.
func (b *Browser) armRetry(f *fetch) {
	if f.retryEv != nil {
		b.sched.Cancel(f.retryEv)
	}
	f.retryEv = b.sched.After(b.retryWait, func() {
		f.retryEv = nil
		if f.done || f.started || b.result.Broken {
			return
		}
		if f.retries >= b.cfg.MaxRetries {
			return // leave it to the stall/reset machinery
		}
		f.retries++
		b.result.AppRetries++
		b.request(f, RequestRetry)
	})
}

// onPush adopts a pushed stream: if the plan wants the object and it is
// not yet complete, the push replaces the GET the browser would have sent.
func (b *Browser) onPush(promised *h2.Stream, fields []h2.HeaderField) {
	var path string
	for _, f := range fields {
		if f.Name == ":path" {
			path = f.Value
		}
	}
	obj := b.site.Lookup(path)
	if obj == nil {
		promised.Reset(h2.ErrCodeRefusedStream)
		return
	}
	f := b.ensureFetch(obj.ID)
	if f.done {
		promised.Reset(h2.ErrCodeCancel)
		return
	}
	f.issued = true // the push replaces our request
	f.deadlineFrom = b.sched.Now()
	f.streams[promised.ID()] = 0
	b.byStream[promised.ID()] = f
	b.result.Requests = append(b.result.Requests, RequestEvent{
		Time:     b.sched.Now(),
		ObjectID: obj.ID,
		StreamID: promised.ID(),
		Kind:     RequestPushed,
	})
	if b.fl.Enabled() {
		b.fl.Request(obj.ID, promised.ID(), RequestPushed.String())
	}
}

// onResponseEvent handles headers/data arriving for a stream.
func (b *Browser) onResponseEvent(s *h2.Stream, n int, endStream bool) {
	f := b.byStream[s.ID()]
	if f == nil {
		return
	}
	b.lastProgress = b.sched.Now()
	f.started = true
	if f.retryEv != nil {
		b.sched.Cancel(f.retryEv)
		f.retryEv = nil
	}
	f.streams[s.ID()] += n
	if endStream && !f.done {
		f.done = true
		f.doneAt = b.sched.Now()
		b.result.Completed[f.obj.ID] = f.doneAt
		if b.tr.Enabled() {
			b.tr.Emit(trace.LayerBrowser, "object-done",
				trace.Str("object", f.obj.ID), trace.Num("stream", int64(s.ID())))
		}
		if b.fl.Enabled() {
			b.fl.ObjectDone(f.obj.ID, s.ID())
		}
		// Cancel sibling duplicate streams; the object is in. Sorted
		// order keeps the RST sequence (and so the whole wire trace)
		// reproducible — map order would reshuffle it per run.
		for _, id := range sortedStreamIDs(f.streams) {
			if id == s.ID() {
				continue
			}
			if sib := b.stack.h2c.Stream(id); sib != nil {
				sib.Reset(h2.ErrCodeCancel)
			}
			delete(b.byStream, id)
		}
		for _, idx := range f.triggered {
			idx := idx
			b.sched.After(b.plan.Steps[idx].Gap, func() { b.issueStep(idx) })
		}
		f.triggered = nil
		if b.Done() {
			b.finished = true
			b.cancelTimers()
		}
	}
}

// armStallCheck runs the §IV-D stall detector: a per-request completion
// deadline (Firefox-style response timeout). When any outstanding fetch
// has been pending longer than the browser's current patience — stray
// trickled bytes do not count as health — the browser resets every open
// stream and re-requests what it still needs, backing its patience off.
func (b *Browser) armStallCheck() {
	if b.stallEv != nil {
		b.sched.Cancel(b.stallEv)
	}
	b.stallEv = b.sched.After(250*time.Millisecond, func() {
		b.stallEv = nil
		if b.result.Broken || b.finished {
			return
		}
		open := b.openIncomplete()
		now := b.sched.Now()
		for _, f := range open {
			if now-f.deadlineFrom >= b.resetWait {
				b.doReset(open)
				break
			}
		}
		b.armStallCheck()
	})
}

// sortedStreamIDs returns a fetch's stream ids in ascending order, so
// every loop that resets or inspects them acts deterministically.
func sortedStreamIDs(m map[uint32]int) []uint32 {
	ids := make([]uint32, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// openIncomplete returns fetches that were issued but have not completed.
func (b *Browser) openIncomplete() []*fetch {
	var out []*fetch
	for _, step := range b.plan.Steps {
		f := b.fetches[step.ObjectID]
		if f != nil && f.issued && !f.done {
			out = append(out, f)
		}
	}
	return out
}

// doReset is the paper's clean-slate cycle: RST every open stream (the
// server flushes its queues), double the patience, and re-request the
// missing objects in plan order.
func (b *Browser) doReset(open []*fetch) {
	if b.result.Resets >= b.cfg.MaxResets {
		b.break_(fmt.Sprintf("gave up after %d reset cycles", b.result.Resets))
		return
	}
	b.result.Resets++
	if b.tr.Enabled() {
		b.tr.Emit(trace.LayerBrowser, "reset-cycle",
			trace.Num("cycle", int64(b.result.Resets)), trace.Num("open", int64(len(open))),
			trace.Dur("patience", b.resetWait))
	}
	// Back off all patience after a reset: the client has learned the
	// path is lossy (§IV-D: "the client's TCP also waits for a longer
	// time before attempting to send fast-retransmission requests").
	b.resetWait *= 2
	b.retryWait *= 2
	for _, f := range open {
		for _, id := range sortedStreamIDs(f.streams) {
			if s := b.stack.h2c.Stream(id); s != nil {
				s.Reset(h2.ErrCodeCancel)
			}
			delete(b.byStream, id)
			delete(f.streams, id)
		}
		f.started = false
		f.deadlineFrom = b.sched.Now()
		if f.retryEv != nil {
			b.sched.Cancel(f.retryEv)
			f.retryEv = nil
		}
	}
	b.lastProgress = b.sched.Now()
	// Re-request in plan (priority) order: first after the re-parse
	// think time, then progressively as the browser re-discovers needs.
	gap := b.cfg.ReRequestDelay
	for _, f := range open {
		f := f
		b.sched.After(gap, func() { b.request(f, RequestReRequest) })
		gap += b.cfg.ReRequestGap
	}
}
