package endpoint

import (
	"testing"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/metrics"
	"h2privacy/internal/netsim"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tcpsim"
	"h2privacy/internal/website"
)

// testbed spins up the full stack over a configurable path.
type testbed struct {
	sched   *simtime.Scheduler
	path    *netsim.Path
	server  *Server
	browser *Browser
	site    *website.Site
	plan    *website.Plan
}

func newTestbed(t *testing.T, seed int64, link netsim.LinkConfig, perm []int) *testbed {
	t.Helper()
	tb := &testbed{sched: simtime.NewScheduler(), site: website.ISideWith()}
	rng := simtime.NewRand(seed)
	var err error
	tb.path, err = netsim.NewPath(tb.sched, rng.Fork(), netsim.PathConfig{Link: link})
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tcpsim.NewPair(tb.sched, rng.Fork(), tb.path, tcpsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	tb.plan, err = tb.site.PlanFor(perm)
	if err != nil {
		t.Fatal(err)
	}
	tb.server, err = NewServer(tb.sched, rng.Fork(), pair.Server, tb.site, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tb.browser, err = NewBrowser(tb.sched, rng.Fork(), pair.Client, tb.site, tb.plan, BrowserConfig{})
	if err != nil {
		t.Fatal(err)
	}
	tb.server.Start()
	tb.browser.Start()
	return tb
}

func goodLink() netsim.LinkConfig {
	return netsim.LinkConfig{
		BandwidthBps:  1e9, // the paper's 1 Gbps gateway
		PropDelay:     8 * time.Millisecond,
		NaturalJitter: 500 * time.Microsecond,
		ReorderProb:   0.02, // real paths reorder occasionally, not per-packet
	}
}

var identityPerm = []int{0, 1, 2, 3, 4, 5, 6, 7}

func TestFullPageLoadCompletes(t *testing.T) {
	tb := newTestbed(t, 1, goodLink(), identityPerm)
	tb.sched.RunUntil(60 * time.Second)
	res := tb.browser.Result()
	if res.Broken {
		t.Fatalf("page load broken: %s", res.BrokenReason)
	}
	if !tb.browser.Done() {
		t.Fatalf("completed %d/%d objects", len(res.Completed), len(tb.plan.Steps))
	}
	if tb.server.Err() != nil {
		t.Fatalf("server error: %v", tb.server.Err())
	}
	// A clean network needs no reset cycles and at most stray retries.
	if res.AppRetries > 1 || res.Resets != 0 {
		t.Fatalf("retries=%d resets=%d on clean network", res.AppRetries, res.Resets)
	}
	if tb.server.TasksServed() < len(tb.site.Objects) {
		t.Fatalf("server served %d tasks, want ≥ %d", tb.server.TasksServed(), len(tb.site.Objects))
	}
}

func TestServerTransmitsCorrectBytes(t *testing.T) {
	tb := newTestbed(t, 2, goodLink(), identityPerm)
	tb.sched.RunUntil(60 * time.Second)
	// Per-object spans must sum to the object sizes.
	byInstance := map[string]int{}
	for _, span := range tb.server.TxLog() {
		byInstance[span.Instance] += span.Len
	}
	for _, o := range tb.site.Objects {
		if got := byInstance[o.ID+"#0"]; got != o.Size {
			t.Fatalf("object %s: %d bytes in tx log, want %d", o.ID, got, o.Size)
		}
	}
}

func TestBaselineMultiplexingOccurs(t *testing.T) {
	// With the full page in flight the server must interleave streams:
	// peak concurrency > 1 and the quiz HTML should multiplex in a
	// majority of trials (the paper's baseline: 68 % of loads).
	multiplexed := 0
	const trials = 16
	for seed := int64(0); seed < trials; seed++ {
		tb := newTestbed(t, 100+seed, goodLink(), identityPerm)
		tb.sched.RunUntil(60 * time.Second)
		if tb.server.ActivePeak() < 2 {
			t.Fatalf("seed %d: peak concurrency %d", seed, tb.server.ActivePeak())
		}
		dom := metrics.BestDoMPerObject(tb.server.TxLog())
		if dom[website.TargetID] > 0 {
			multiplexed++
		}
	}
	if multiplexed < 6 {
		t.Fatalf("quiz HTML multiplexed in only %d/%d baseline trials", multiplexed, trials)
	}
}

func TestRequestSpacingSerializesTarget(t *testing.T) {
	// The paper's core insight (Fig. 2): spacing requests so only one is
	// in the server queue at a time serializes the object. With browser
	// retries disabled (isolating the spacing mechanism), the quiz HTML
	// must transmit with DoM 0 in a clear majority of trials — far above
	// its baseline rate.
	serialized := 0
	const trials = 8
	for seed := int64(0); seed < trials; seed++ {
		sched := simtime.NewScheduler()
		rng := simtime.NewRand(700 + seed)
		path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: goodLink()})
		if err != nil {
			t.Fatal(err)
		}
		// The adversary's targeted spacing: delay the k-th GET by k·80 ms
		// (retransmitted copies are delayed alongside, as netem does).
		ctrl := adversary.NewController(sched, rng.Fork(), path)
		ctrl.SetRequestSpacing(80 * time.Millisecond)
		pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{})
		if err != nil {
			t.Fatal(err)
		}
		site := website.ISideWith()
		plan, err := site.PlanFor(identityPerm)
		if err != nil {
			t.Fatal(err)
		}
		server, err := NewServer(sched, rng.Fork(), pair.Server, site, ServerConfig{})
		if err != nil {
			t.Fatal(err)
		}
		browser, err := NewBrowser(sched, rng.Fork(), pair.Client, site, plan, BrowserConfig{
			RetryTimeout: time.Hour,
			ResetTimeout: time.Hour,
		})
		if err != nil {
			t.Fatal(err)
		}
		server.Start()
		browser.Start()
		sched.RunUntil(180 * time.Second)
		dom := metrics.BestDoMPerObject(server.TxLog())
		if got, ok := dom[website.TargetID]; ok && got == 0 {
			serialized++
		}
	}
	if serialized < trials*5/8 {
		t.Fatalf("target serialized in %d/%d spaced trials", serialized, trials)
	}
}

func TestBrowserRetriesOnStalledResponse(t *testing.T) {
	// Black-hole the first serving of the quiz HTML: the browser must
	// issue a duplicate GET and the server serve a second instance.
	sched := simtime.NewScheduler()
	rng := simtime.NewRand(11)
	path, err := netsim.NewPath(sched, rng.Fork(), netsim.PathConfig{Link: goodLink()})
	if err != nil {
		t.Fatal(err)
	}
	site := website.ISideWith()
	plan, err := site.PlanFor(identityPerm)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := tcpsim.NewPair(sched, rng.Fork(), path, tcpsim.Config{})
	if err != nil {
		t.Fatal(err)
	}
	server, err := NewServer(sched, rng.Fork(), pair.Server, site, ServerConfig{})
	if err != nil {
		t.Fatal(err)
	}
	browser, err := NewBrowser(sched, rng.Fork(), pair.Client, site, plan, BrowserConfig{
		RetryTimeout: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Black-hole server→client payload packets for a 500 ms window while
	// the page is mid-flight: stalled responses must trigger duplicate
	// GETs, and the server must serve extra instances.
	holeStart, holeEnd := 600*time.Millisecond, 1100*time.Millisecond
	path.Link(netsim.ServerToClient).AddProcessor(netsim.ProcessorFunc(func(now time.Duration, pkt *netsim.Packet) netsim.Verdict {
		seg := pkt.Payload.(*tcpsim.Segment)
		drop := len(seg.Payload) > 0 && now >= holeStart && now < holeEnd
		return netsim.Verdict{Drop: drop}
	}))
	server.Start()
	browser.Start()
	sched.RunUntil(120 * time.Second)
	if browser.Result().Broken {
		t.Fatalf("broken: %s", browser.Result().BrokenReason)
	}
	if !browser.Done() {
		t.Fatalf("completed %d/%d", len(browser.Result().Completed), len(plan.Steps))
	}
	if browser.Result().AppRetries == 0 {
		t.Fatal("no duplicate GETs despite a 500ms response black-hole")
	}
	if server.TasksServed() <= len(site.Objects) {
		t.Fatalf("served %d tasks; duplicates expected", server.TasksServed())
	}
}
