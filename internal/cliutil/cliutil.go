// Package cliutil factors the flag plumbing the repository's commands
// share: the -trace/-trace-format pair with its export-on-exit receipt,
// the -debug-addr observability endpoint (metrics + pprof + live trace
// download), and the -perf/-cpuprofile/-memprofile performance
// observatory. Commands register the flags on their FlagSet, then ask
// for a tracer / debug server / perf collector after flag.Parse;
// everything stays inert when the flags are unset.
package cliutil

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"syscall"
	"time"

	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/experiment"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
	"h2privacy/internal/trace"
)

// TraceFlags holds the -trace / -trace-format pair.
type TraceFlags struct {
	Path   string
	Format string
}

// RegisterTrace adds -trace and -trace-format to fs. what describes the
// trace in the -trace flag's help text ("the trial's cross-layer trace").
func (tf *TraceFlags) RegisterTrace(fs *flag.FlagSet, what string) {
	fs.StringVar(&tf.Path, "trace", "", "export "+what+" to this file")
	fs.StringVar(&tf.Format, "trace-format", trace.FormatChrome,
		"trace export format: "+strings.Join(trace.Formats(), ", "))
}

// Armed reports whether -trace was given.
func (tf *TraceFlags) Armed() bool { return tf.Path != "" }

// NewTracer validates the format up front (so a typo fails before a long
// run, not at export time) and returns a tracer when -trace was given or
// force is set — commands force one when another consumer (a timeline, a
// debug endpoint) needs events regardless of export. Returns nil, nil
// when no tracer is wanted.
func (tf *TraceFlags) NewTracer(cfg trace.Config, force bool) (*trace.Tracer, error) {
	if !tf.Armed() && !force {
		return nil, nil
	}
	if !validFormat(tf.Format) {
		return nil, fmt.Errorf("unknown trace format %q (want %s)",
			tf.Format, strings.Join(trace.Formats(), ", "))
	}
	return trace.New(nil, cfg), nil
}

// NewWallTracer is NewTracer for wall-clock, goroutine-per-stream
// commands (h2serve): the tracer stamps real time and takes the mutex
// path.
func (tf *TraceFlags) NewWallTracer(force bool) (*trace.Tracer, error) {
	if !tf.Armed() && !force {
		return nil, nil
	}
	if !validFormat(tf.Format) {
		return nil, fmt.Errorf("unknown trace format %q (want %s)",
			tf.Format, strings.Join(trace.Formats(), ", "))
	}
	return trace.New(trace.WallClock(), trace.Config{Concurrent: true}), nil
}

// Export writes the trace to -trace's path in -trace-format and prints a
// receipt to logw ("tool: wrote N trace events ..."). A no-op when -trace
// was not given or the tracer is nil.
func (tf *TraceFlags) Export(tr *trace.Tracer, logw io.Writer, tool string) error {
	if !tf.Armed() || tr == nil {
		return nil
	}
	f, err := os.Create(tf.Path)
	if err != nil {
		return err
	}
	if err := tr.WriteFormat(f, tf.Format); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if logw != nil {
		fmt.Fprintf(logw, "%s: wrote %d trace events (%s) to %s\n",
			tool, tr.Len(), tf.Format, tf.Path)
	}
	return nil
}

func validFormat(format string) bool {
	for _, f := range trace.Formats() {
		if f == format {
			return true
		}
	}
	return false
}

// CheckFlags holds the -check / -check-report pair.
type CheckFlags struct {
	Enabled    bool
	ReportPath string
}

// RegisterCheck adds -check and -check-report to fs.
func (cf *CheckFlags) RegisterCheck(fs *flag.FlagSet) {
	fs.BoolVar(&cf.Enabled, "check", false,
		"arm runtime invariant checking on every layer of each trial (see internal/check)")
	fs.StringVar(&cf.ReportPath, "check-report", "",
		"with -check: also write the full violation report to this file")
}

// Armed reports whether -check was given.
func (cf *CheckFlags) Armed() bool { return cf.Enabled }

// NewRecorder returns a violation recorder when -check was given, else nil.
func (cf *CheckFlags) NewRecorder() *check.Recorder {
	if !cf.Armed() {
		return nil
	}
	return check.NewRecorder()
}

// Report prints the recorder's summary to logw, writes the full report to
// -check-report when set, and returns the total violation count — callers
// exit nonzero when it is. A nil recorder (unarmed) reports zero.
func (cf *CheckFlags) Report(rec *check.Recorder, logw io.Writer, tool string) (int, error) {
	if rec == nil {
		return 0, nil
	}
	if logw != nil {
		fmt.Fprintf(logw, "%s: %s\n", tool, strings.TrimRight(rec.Report(), "\n"))
	}
	if cf.ReportPath != "" {
		f, err := os.Create(cf.ReportPath)
		if err != nil {
			return rec.Total(), err
		}
		rec.WriteReport(f)
		if err := f.Close(); err != nil {
			return rec.Total(), err
		}
		if logw != nil {
			fmt.Fprintf(logw, "%s: wrote check report to %s\n", tool, cf.ReportPath)
		}
	}
	return rec.Total(), nil
}

// PerfFlags holds the performance-observatory flag set: -perf (per-stage
// cost attribution), -perf-out (write the report as JSON), -cpuprofile
// and -memprofile (pprof captures). Any of the four arms the collector —
// profiling without attribution would lose the stage labels, and a
// report path without -perf would write an empty report.
type PerfFlags struct {
	Enabled bool
	OutPath string
	CPUPath string
	MemPath string

	cpuFile *os.File
}

// RegisterPerf adds -perf, -perf-out, -cpuprofile and -memprofile to fs.
func (pf *PerfFlags) RegisterPerf(fs *flag.FlagSet) {
	fs.BoolVar(&pf.Enabled, "perf", false,
		"attribute host-side cost per trial stage (build/run/capture/check/publish) and print the hot-stage table on exit")
	fs.StringVar(&pf.OutPath, "perf-out", "",
		"write the perf report (stage table, worker utilization) as JSON to this file; implies -perf")
	fs.StringVar(&pf.CPUPath, "cpuprofile", "",
		"write a CPU profile (pprof, stage-labeled) to this file; implies -perf")
	fs.StringVar(&pf.MemPath, "memprofile", "",
		"write a heap profile (pprof, post-GC) to this file on exit; implies -perf")
}

// Armed reports whether any perf flag was given.
func (pf *PerfFlags) Armed() bool {
	return pf.Enabled || pf.OutPath != "" || pf.CPUPath != "" || pf.MemPath != ""
}

// NewCollector returns a perf collector when any perf flag was given,
// else nil (the zero-cost disabled path — see internal/perf). When a CPU
// profile is being captured, goroutine stage labels are armed too, so
// profile samples carry experiment/stage dimensions; without a profile
// the labels would cost allocations for nothing and stay off.
func (pf *PerfFlags) NewCollector() *perf.Collector {
	if !pf.Armed() {
		return nil
	}
	c := perf.NewCollector()
	if pf.CPUPath != "" {
		c.EnableLabels()
	}
	return c
}

// StartProfiles begins the CPU profile when -cpuprofile was given. Call
// before the workload; pair with StopProfiles after it.
func (pf *PerfFlags) StartProfiles(logw io.Writer, tool string) error {
	if pf.CPUPath == "" {
		return nil
	}
	f, err := os.Create(pf.CPUPath)
	if err != nil {
		return err
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return err
	}
	pf.cpuFile = f
	return nil
}

// StopProfiles stops the CPU profile and writes the heap profile (after a
// forced GC, so the capture shows live heap rather than garbage),
// printing a receipt per file. Safe to call when nothing was started.
func (pf *PerfFlags) StopProfiles(logw io.Writer, tool string) error {
	if pf.cpuFile != nil {
		pprof.StopCPUProfile()
		err := pf.cpuFile.Close()
		pf.cpuFile = nil
		if err != nil {
			return err
		}
		if logw != nil {
			fmt.Fprintf(logw, "%s: wrote CPU profile to %s\n", tool, pf.CPUPath)
		}
	}
	if pf.MemPath != "" {
		f, err := os.Create(pf.MemPath)
		if err != nil {
			return err
		}
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if logw != nil {
			fmt.Fprintf(logw, "%s: wrote heap profile to %s\n", tool, pf.MemPath)
		}
	}
	return nil
}

// Report prints the collector's hot-stage table to logw and, when
// -perf-out was given, writes the full report as JSON with a receipt. A
// nil collector (unarmed) reports nothing.
func (pf *PerfFlags) Report(c *perf.Collector, logw io.Writer, tool string) error {
	if c == nil {
		return nil
	}
	rep := c.Report()
	if logw != nil {
		rep.WriteText(logw, 0)
	}
	if pf.OutPath != "" {
		if err := rep.WriteFile(pf.OutPath); err != nil {
			return err
		}
		if logw != nil {
			fmt.Fprintf(logw, "%s: wrote perf report to %s\n", tool, pf.OutPath)
		}
	}
	return nil
}

// FeatureFlags holds the -features / -features-out pair: the flowseq
// event-sequence analytics (per-stream timelines, burst tables, size/gap
// features, clean-slate spans).
type FeatureFlags struct {
	Enabled bool
	OutPath string
}

// RegisterFeatures adds -features and -features-out to fs.
func (ff *FeatureFlags) RegisterFeatures(fs *flag.FlagSet) {
	fs.BoolVar(&ff.Enabled, "features", false,
		"extract per-stream flow features (timelines, burst tables, clean-slate spans) and print them on exit")
	fs.StringVar(&ff.OutPath, "features-out", "",
		"write the feature rows to this file (.csv → stream CSV, else JSONL with stream/burst/span tables); implies -features extraction")
}

// Armed reports whether either feature flag was given.
func (ff *FeatureFlags) Armed() bool { return ff.Enabled || ff.OutPath != "" }

// NewCollector returns a flowseq collector when a feature flag was given or
// force is set — commands force one when -debug-addr is up, so
// /debug/flows serves live burst tables even without an export. Nil when
// extraction is unwanted (the zero-cost disabled path: every downstream
// analyzer stays nil). The collector's receipt is published as the
// "features" expvar on /debug/vars.
func (ff *FeatureFlags) NewCollector(force bool) *flowseq.Collector {
	if !ff.Armed() && !force {
		return nil
	}
	col := flowseq.NewCollector()
	out := ff.OutPath
	obs.PublishFeaturesVar(func() any { return col.Receipt(out) })
	return col
}

// Export prints the burst tables to logw when -features was given and
// writes the feature rows to -features-out when set (.csv → the stream
// CSV, anything else → the three-table JSONL), with a receipt line. A nil
// collector is a no-op.
func (ff *FeatureFlags) Export(col *flowseq.Collector, logw io.Writer, tool string) error {
	if col == nil {
		return nil
	}
	if ff.Enabled && logw != nil {
		if err := col.WriteTable(logw); err != nil {
			return err
		}
	}
	if ff.OutPath == "" {
		return nil
	}
	format := flowseq.FormatJSONL
	if strings.HasSuffix(ff.OutPath, ".csv") {
		format = flowseq.FormatCSV
	}
	f, err := os.Create(ff.OutPath)
	if err != nil {
		return err
	}
	if err := col.WriteFlows(f, format); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if logw != nil {
		r := col.Receipt(ff.OutPath)
		fmt.Fprintf(logw, "%s: wrote %d stream / %d burst / %d span feature rows (schema %d, %s) to %s\n",
			tool, r.StreamRows, r.BurstRows, r.SpanRows, r.Schema, format, ff.OutPath)
	}
	return nil
}

// DefaultStepBudget is the per-trial virtual-time watchdog default: a
// full attack trial executes ~12k scheduler events, so five million is
// ~400x headroom for any legitimate configuration while a chaos-hang
// trial burns through it in a fraction of a second.
const DefaultStepBudget = 5_000_000

// SuperviseFlags holds the sweep supervision flag group: retry bounds,
// per-trial watchdogs, deterministic fault injection, the degraded-mode
// exit policy and the quarantine artifact path. Registered alongside the
// Check/Perf/Feature groups so all sweep-capable commands stay
// consistent.
type SuperviseFlags struct {
	MaxRetries    int
	TrialDeadline time.Duration
	StepBudget    uint64
	Chaos         string
	Strict        bool
	QuarantineOut string
}

// RegisterSupervise adds -max-retries, -trial-deadline, -step-budget,
// -chaos, -strict and -quarantine-out to fs.
func (sf *SuperviseFlags) RegisterSupervise(fs *flag.FlagSet) {
	fs.IntVar(&sf.MaxRetries, "max-retries", 1,
		"re-run a failed trial this many times (fresh state each attempt, escalating backoff) before quarantining it")
	fs.DurationVar(&sf.TrialDeadline, "trial-deadline", 0,
		"wall-clock watchdog per trial attempt (0 disables); nondeterministic backstop — prefer -step-budget for reproducible kills")
	fs.Uint64Var(&sf.StepBudget, "step-budget", DefaultStepBudget,
		"virtual-time watchdog: kill a trial attempt after this many scheduler events (deterministic; 0 disables)")
	fs.StringVar(&sf.Chaos, "chaos", "",
		"deterministically sabotage trials for supervisor testing: comma list of mode:flatIndex with modes panic|hang, e.g. panic:3,hang:11")
	fs.BoolVar(&sf.Strict, "strict", false,
		"exit non-zero when the sweep completes degraded (any trial quarantined)")
	fs.StringVar(&sf.QuarantineOut, "quarantine-out", "",
		"write the machine-readable quarantine file (failed trials with repro commands) to this path")
}

// ParseChaosSpec parses the -chaos spec ("panic:3,hang:11") into the
// experiment.Options.ChaosTrial hook: a map from flat trial index to the
// injected core.ChaosMode. Empty spec → nil hook (no injection).
func ParseChaosSpec(spec string) (func(int) core.ChaosMode, error) {
	if spec == "" {
		return nil, nil
	}
	m := make(map[int]core.ChaosMode)
	for _, part := range strings.Split(spec, ",") {
		mode, idxStr, ok := strings.Cut(strings.TrimSpace(part), ":")
		if !ok {
			return nil, fmt.Errorf("bad -chaos entry %q (want mode:trialIndex)", part)
		}
		cm, err := core.ParseChaosMode(mode)
		if err != nil {
			return nil, err
		}
		idx, err := strconv.Atoi(idxStr)
		if err != nil || idx < 0 {
			return nil, fmt.Errorf("bad -chaos trial index %q in %q", idxStr, part)
		}
		m[idx] = cm
	}
	return func(flat int) core.ChaosMode { return m[flat] }, nil
}

// Apply threads the supervision flags into opts — retry bounds,
// watchdogs, chaos injection — and arms degraded mode with a fresh
// Quarantine collector, published as the "quarantine" expvar for
// /debug/vars. Returns the collector for Report after the sweep.
func (sf *SuperviseFlags) Apply(opts *experiment.Options) (*experiment.Quarantine, error) {
	chaos, err := ParseChaosSpec(sf.Chaos)
	if err != nil {
		return nil, err
	}
	q := experiment.NewQuarantine()
	obs.PublishQuarantineVar(func() any { return q.Receipt() })
	opts.MaxRetries = sf.MaxRetries
	opts.RetryBackoff = 100 * time.Millisecond
	opts.TrialDeadline = sf.TrialDeadline
	opts.StepBudget = sf.StepBudget
	opts.Quarantine = q
	opts.ChaosTrial = chaos
	return q, nil
}

// Report prints the degraded-mode summary (each quarantined trial with
// its standalone repro command) and writes the -quarantine-out artifact —
// always when the flag is set, even with zero failures, so CI can assert
// the file's presence and content unconditionally. Returns the
// quarantined count; with -strict a non-zero count should exit non-zero
// (Exit folds that policy).
func (sf *SuperviseFlags) Report(q *experiment.Quarantine, logw io.Writer, tool string) (int, error) {
	n := q.Len()
	if n > 0 && logw != nil {
		fmt.Fprintf(logw, "%s: sweep DEGRADED: %d trial(s) quarantined after exhausting retries\n", tool, n)
		for _, f := range q.Failures() {
			fmt.Fprintf(logw, "  trial %d (seed %d) [%s] after %d attempt(s): %s\n",
				f.Trial, f.Seed, f.Kind, f.Attempts, f.Err)
			fmt.Fprintf(logw, "      repro: %s\n", f.Repro)
		}
	}
	if sf.QuarantineOut != "" {
		if err := q.WriteFile(sf.QuarantineOut, tool); err != nil {
			return n, err
		}
		if logw != nil {
			fmt.Fprintf(logw, "%s: wrote quarantine file (%d entries) to %s\n", tool, n, sf.QuarantineOut)
		}
	}
	return n, nil
}

// Exit resolves the degraded-mode exit policy: 0 when nothing was
// quarantined or degraded completion is tolerated (the default — a
// degraded sweep that salvaged its other trials is a success), 1 under
// -strict.
func (sf *SuperviseFlags) Exit(quarantined int) int {
	if quarantined > 0 && sf.Strict {
		return 1
	}
	return 0
}

// SignalContext returns a context cancelled on SIGINT/SIGTERM, for
// experiment.Options.Ctx: the first signal starts the cooperative drain
// (workers stop claiming trials, the trial in flight is interrupted at
// the scheduler's next poll window, partial artifacts export on the way
// out); a second signal kills the process through the restored default
// handler. Callers defer stop().
func SignalContext() (context.Context, context.CancelFunc) {
	return signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
}

// DebugFlags holds -debug-addr.
type DebugFlags struct {
	Addr string
}

// RegisterDebug adds -debug-addr to fs.
func (df *DebugFlags) RegisterDebug(fs *flag.FlagSet) {
	fs.StringVar(&df.Addr, "debug-addr", "",
		"serve /metrics, /healthz, /debug/pprof, /debug/trace and /debug/flows on this address (e.g. :9090; empty disables)")
}

// Armed reports whether -debug-addr was given.
func (df *DebugFlags) Armed() bool { return df.Addr != "" }

// Serve starts the debug HTTP server on -debug-addr with the given
// registry, tracer and flow source (nil flows → /debug/flows 404s with a
// hint), printing the resolved endpoint to logw. Returns nil, nil when the
// flag is unset; the caller Closes the server on exit.
func (df *DebugFlags) Serve(reg *obs.Registry, tr *trace.Tracer, flows *flowseq.Collector, logw io.Writer, tool string) (*obs.DebugServer, error) {
	if !df.Armed() {
		return nil, nil
	}
	ds := &obs.DebugServer{Registry: reg, Tracer: tr}
	if flows != nil {
		ds.Flows = flows
	}
	addr, err := ds.Start(df.Addr)
	if err != nil {
		return nil, err
	}
	if logw != nil {
		fmt.Fprintf(logw, "%s: debug endpoints on http://%s/ (/metrics /healthz /debug/pprof /debug/trace /debug/flows)\n",
			tool, addr)
	}
	return ds, nil
}
