package cliutil

import (
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
	"h2privacy/internal/trace"
)

func TestTraceFlagsLifecycle(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var tf TraceFlags
	tf.RegisterTrace(fs, "the test trace")
	path := filepath.Join(t.TempDir(), "out.json")
	if err := fs.Parse([]string{"-trace", path, "-trace-format", "summary"}); err != nil {
		t.Fatal(err)
	}
	if !tf.Armed() {
		t.Fatal("not armed after -trace")
	}
	tr, err := tf.NewTracer(trace.Config{}, false)
	if err != nil || tr == nil {
		t.Fatalf("NewTracer: %v %v", tr, err)
	}
	tr.Emit(trace.LayerH2, "frame", trace.Num("len", 9))
	var log strings.Builder
	if err := tf.Export(tr, &log, "testtool"); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "events retained") {
		t.Fatalf("summary export wrong: %q", data)
	}
	if !strings.Contains(log.String(), "testtool: wrote 1 trace events (summary)") {
		t.Fatalf("receipt wrong: %q", log.String())
	}
}

func TestTraceFlagsDisarmed(t *testing.T) {
	var tf TraceFlags
	tf.Format = trace.FormatChrome
	tr, err := tf.NewTracer(trace.Config{}, false)
	if err != nil || tr != nil {
		t.Fatalf("disarmed NewTracer = %v %v", tr, err)
	}
	// force builds a tracer even without -trace; Export stays a no-op.
	tr, err = tf.NewTracer(trace.Config{}, true)
	if err != nil || tr == nil {
		t.Fatalf("forced NewTracer = %v %v", tr, err)
	}
	if err := tf.Export(tr, io.Discard, "t"); err != nil {
		t.Fatal(err)
	}
}

func TestTraceFlagsBadFormat(t *testing.T) {
	tf := TraceFlags{Path: "x.json", Format: "nope"}
	if _, err := tf.NewTracer(trace.Config{}, false); err == nil {
		t.Fatal("bad format accepted by NewTracer")
	}
	if _, err := tf.NewWallTracer(false); err == nil {
		t.Fatal("bad format accepted by NewWallTracer")
	}
}

func TestWallTracer(t *testing.T) {
	var tf TraceFlags
	tf.Format = trace.FormatChrome
	tr, err := tf.NewWallTracer(true)
	if err != nil || tr == nil {
		t.Fatalf("NewWallTracer = %v %v", tr, err)
	}
	tr.Emit(trace.LayerH2, "x")
	if tr.Len() != 1 {
		t.Fatal("wall tracer dropped the event")
	}
}

func TestDebugFlagsServe(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var df DebugFlags
	df.RegisterDebug(fs)
	if err := fs.Parse([]string{"-debug-addr", "127.0.0.1:0"}); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	reg.Counter("x_total", "").Inc()
	var log strings.Builder
	ds, err := df.Serve(reg, nil, nil, &log, "testtool")
	if err != nil {
		t.Fatal(err)
	}
	defer ds.Close()
	receipt := log.String()
	if !strings.Contains(receipt, "testtool: debug endpoints on http://127.0.0.1:") {
		t.Fatalf("receipt wrong: %q", receipt)
	}
	addr := strings.TrimPrefix(receipt[strings.Index(receipt, "http://"):], "http://")
	addr = addr[:strings.Index(addr, "/")]
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 || !strings.Contains(string(body), "x_total 1") {
		t.Fatalf("/metrics = %d %q", resp.StatusCode, body)
	}
}

func TestDebugFlagsDisarmed(t *testing.T) {
	var df DebugFlags
	ds, err := df.Serve(obs.NewRegistry(), nil, nil, io.Discard, "t")
	if err != nil || ds != nil {
		t.Fatalf("disarmed Serve = %v %v", ds, err)
	}
}

func TestPerfFlagsDisarmed(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var pf PerfFlags
	pf.RegisterPerf(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if pf.Armed() {
		t.Fatal("armed with no perf flags")
	}
	if c := pf.NewCollector(); c != nil {
		t.Fatal("collector handed out while disarmed")
	}
	// The whole lifecycle must be a silent no-op when disarmed.
	if err := pf.StartProfiles(io.Discard, "x"); err != nil {
		t.Fatal(err)
	}
	if err := pf.StopProfiles(io.Discard, "x"); err != nil {
		t.Fatal(err)
	}
	if err := pf.Report(nil, io.Discard, "x"); err != nil {
		t.Fatal(err)
	}
}

func TestPerfFlagsLifecycle(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "heap.pprof")
	out := filepath.Join(dir, "perf.json")
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var pf PerfFlags
	pf.RegisterPerf(fs)
	if err := fs.Parse([]string{"-cpuprofile", cpu, "-memprofile", mem, "-perf-out", out}); err != nil {
		t.Fatal(err)
	}
	if !pf.Armed() {
		t.Fatal("not armed despite profile flags")
	}
	col := pf.NewCollector()
	if col == nil {
		t.Fatal("no collector despite armed flags")
	}
	if err := pf.StartProfiles(io.Discard, "x"); err != nil {
		t.Fatal(err)
	}
	// A tiny workload so the collector has something to report.
	w := col.Worker()
	tok := w.BeginTrial()
	sp := w.Start(perf.StageRun)
	sp.Stop()
	w.EndTrial(tok)
	w.Close()
	var log strings.Builder
	if err := pf.StopProfiles(&log, "x"); err != nil {
		t.Fatal(err)
	}
	if err := pf.Report(col, &log, "x"); err != nil {
		t.Fatal(err)
	}
	for _, path := range []string{cpu, mem, out} {
		st, err := os.Stat(path)
		if err != nil {
			t.Fatalf("%s not written: %v", path, err)
		}
		if st.Size() == 0 {
			t.Fatalf("%s is empty", path)
		}
	}
	for _, want := range []string{"wrote CPU profile", "wrote heap profile", "wrote perf report", "stage"} {
		if !strings.Contains(log.String(), want) {
			t.Fatalf("receipt log missing %q:\n%s", want, log.String())
		}
	}
	rep, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(rep), `"run"`) {
		t.Fatalf("perf report JSON missing run stage: %s", rep)
	}
}
