package cliutil

import (
	"bytes"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2privacy/internal/core"
	"h2privacy/internal/experiment"
)

func TestParseChaosSpec(t *testing.T) {
	if hook, err := ParseChaosSpec(""); hook != nil || err != nil {
		t.Fatalf("empty spec: hook non-nil=%v err=%v, want nil/nil", hook != nil, err)
	}
	hook, err := ParseChaosSpec("panic:3, hang:11")
	if err != nil {
		t.Fatal(err)
	}
	for flat, want := range map[int]core.ChaosMode{
		0: core.ChaosNone, 3: core.ChaosPanic, 11: core.ChaosHang, 12: core.ChaosNone,
	} {
		if got := hook(flat); got != want {
			t.Fatalf("hook(%d) = %v, want %v", flat, got, want)
		}
	}
	for _, bad := range []string{"panic", "hang:x", "bogus:1", "panic:-1"} {
		if _, err := ParseChaosSpec(bad); err == nil {
			t.Fatalf("spec %q parsed without error", bad)
		}
	}
}

func TestSuperviseFlagsDefaults(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	var sf SuperviseFlags
	sf.RegisterSupervise(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if sf.MaxRetries != 1 || sf.StepBudget != DefaultStepBudget || sf.TrialDeadline != 0 ||
		sf.Chaos != "" || sf.Strict || sf.QuarantineOut != "" {
		t.Fatalf("defaults = %+v", sf)
	}
	if err := fs.Parse([]string{"-max-retries", "2", "-chaos", "hang:0", "-strict",
		"-step-budget", "9000", "-quarantine-out", "q.json"}); err != nil {
		t.Fatal(err)
	}
	if sf.MaxRetries != 2 || sf.Chaos != "hang:0" || !sf.Strict ||
		sf.StepBudget != 9000 || sf.QuarantineOut != "q.json" {
		t.Fatalf("parsed = %+v", sf)
	}
}

// TestSuperviseApplyDegradedRun drives the flag group end to end: Apply
// arms a real sweep, an injected panic quarantines one trial, Report
// prints the degraded summary with its repro line and writes the
// quarantine artifact, and Exit enforces -strict.
func TestSuperviseApplyDegradedRun(t *testing.T) {
	qpath := filepath.Join(t.TempDir(), "quarantine.json")
	sf := SuperviseFlags{MaxRetries: 0, StepBudget: 50_000, Chaos: "panic:0", QuarantineOut: qpath}
	opts := experiment.Options{BaseSeed: 11, Workers: 1, SuperviseLog: io.Discard}
	q, err := sf.Apply(&opts)
	if err != nil {
		t.Fatal(err)
	}
	if opts.Quarantine != q || opts.ChaosTrial == nil || opts.StepBudget != 50_000 {
		t.Fatalf("Apply left opts unarmed: %+v", opts)
	}
	q.SetRepro(func(f experiment.TrialFailure) string { return "replay-me" })
	results, err := opts.Sweep(2, func(tr int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(tr)}
	})
	if err != nil {
		t.Fatalf("degraded sweep errored: %v", err)
	}
	if !results[0].Quarantined || results[1].Quarantined {
		t.Fatalf("results = %v / %v, want trial 0 quarantined only", results[0], results[1])
	}
	var log bytes.Buffer
	n, err := sf.Report(q, &log, "test")
	if err != nil || n != 1 {
		t.Fatalf("Report = (%d, %v), want (1, nil)", n, err)
	}
	out := log.String()
	for _, want := range []string{"DEGRADED", "trial 0 (seed 11) [panic]", "repro: replay-me"} {
		if !strings.Contains(out, want) {
			t.Fatalf("report lacks %q:\n%s", want, out)
		}
	}
	raw, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"version": 1`, `"kind": "panic"`, "replay-me"} {
		if !strings.Contains(string(raw), want) {
			t.Fatalf("quarantine file lacks %q:\n%s", want, raw)
		}
	}
	if sf.Exit(n) != 0 {
		t.Fatal("degraded completion exited non-zero without -strict")
	}
	sf.Strict = true
	if sf.Exit(n) != 1 {
		t.Fatal("-strict tolerated a quarantined trial")
	}
	if sf.Exit(0) != 0 {
		t.Fatal("-strict failed a clean sweep")
	}
}

// TestSuperviseReportWritesEmptyArtifact: -quarantine-out is written even
// with zero failures, so CI can assert on the file unconditionally.
func TestSuperviseReportWritesEmptyArtifact(t *testing.T) {
	qpath := filepath.Join(t.TempDir(), "quarantine.json")
	sf := SuperviseFlags{QuarantineOut: qpath}
	n, err := sf.Report(experiment.NewQuarantine(), nil, "test")
	if err != nil || n != 0 {
		t.Fatalf("Report = (%d, %v)", n, err)
	}
	raw, err := os.ReadFile(qpath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"failures": []`) {
		t.Fatalf("empty artifact malformed:\n%s", raw)
	}
}
