// Package h2privacy is a from-scratch Go reproduction of "Depending on
// HTTP/2 for Privacy? Good Luck!" (Mitra, Vairam, SLP SK, Chandrachoodan,
// Kamakoti — DSN 2020): the first traffic-analysis attack on HTTP/2.
//
// The implementation lives under internal/: a discrete-event network and
// TCP simulator, a TLS-like record layer, a sans-IO HTTP/2 stack with
// HPACK (also usable over real sockets via internal/h2/h2sync), the
// target-website model, the on-path adversary, and the experiment harness
// that regenerates every table and figure in the paper's evaluation. See
// README.md for the tour and DESIGN.md for the system inventory.
package h2privacy
