module h2privacy

go 1.22
