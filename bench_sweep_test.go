package h2privacy_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"testing"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/experiment"
	"h2privacy/internal/perf"
	"h2privacy/internal/website"
)

// sweepWorkload is the timed workload for the sweep speedup measurements:
// a full-attack sweep (the heaviest per-trial cost) at a fixed trial
// count, with per-stage cost attribution armed so the record shows where
// the time went, not just how much there was.
func sweepWorkload(workers int, trials int) (time.Duration, []*core.TrialResult, *perf.Report, error) {
	col := perf.NewCollector()
	opts := experiment.Options{Trials: trials, BaseSeed: 42, Workers: workers, Perf: col}
	start := time.Now()
	plan := adversary.DefaultPlan()
	results, err := opts.Sweep(trials, func(t int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(t), Attack: &plan}
	})
	return time.Since(start), results, col.Report(), err
}

// fleetWorkload is the timed workload for the fleet-scale cost curve: a
// sequential attacked fleet sweep (N flows behind one shared bottleneck,
// interference budget 1) with stage attribution armed.
func fleetWorkload(n, trials int) (time.Duration, *perf.Report, error) {
	col := perf.NewCollector()
	plan := adversary.DefaultPlan()
	plan.Adaptive = true
	opts := experiment.Options{Trials: trials, BaseSeed: 42, Workers: 1, Perf: col}
	start := time.Now()
	_, err := opts.Sweep(trials, func(t int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(t), Attack: &plan,
			Fleet: &core.FleetConfig{N: n, Budget: 1}}
	})
	return time.Since(start), col.Report(), err
}

// fleetBenchRows measures the fleet cost curve at the same load levels the
// fleetscale experiment sweeps; trial counts shrink as N grows so the
// whole curve stays cheap enough for CI.
func fleetBenchRows(t *testing.T) []perf.FleetBenchRow {
	t.Helper()
	levels := []struct{ n, trials int }{{1, 8}, {10, 4}, {100, 2}, {1000, 1}}
	rows := make([]perf.FleetBenchRow, 0, len(levels))
	for _, lv := range levels {
		wall, rep, err := fleetWorkload(lv.n, lv.trials)
		if err != nil {
			t.Fatalf("fleet workload N=%d: %v", lv.n, err)
		}
		var allocs int64
		for _, s := range rep.BenchStages() {
			allocs += s.AllocObjects
		}
		row := perf.FleetBenchRow{
			N: lv.n, Trials: lv.trials,
			MSPerTrial:     float64(wall.Milliseconds()) / float64(lv.trials),
			AllocsPerTrial: float64(allocs) / float64(lv.trials),
		}
		rows = append(rows, row)
		t.Logf("fleet N=%-5d %d trials: %.1f ms/trial, %.0f allocs/trial",
			row.N, row.Trials, row.MSPerTrial, row.AllocsPerTrial)
	}
	return rows
}

// BenchmarkSweepWorkers measures the sweep engine at 1 worker and at every
// core, for before/after comparison of the parallel fan-out.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, _, err := sweepWorkload(w, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchSweepRecord times the sweep at 1 worker and at every core and
// writes a machine-readable speedup record — per-stage cost breakdown
// included — to $BENCH_SWEEP_OUT (skipped when unset). CI uploads the
// result as BENCH_sweep.json and diffs it against the committed baseline
// with cmd/benchdiff.
func TestBenchSweepRecord(t *testing.T) {
	out := os.Getenv("BENCH_SWEEP_OUT")
	if out == "" {
		t.Skip("set BENCH_SWEEP_OUT=path to record the sweep speedup")
	}
	const trials = 16
	seqWall, seqRes, seqPerf, err := sweepWorkload(1, trials)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	parWall, parRes, parPerf, err := sweepWorkload(workers, trials)
	if err != nil {
		t.Fatal(err)
	}
	// The speedup claim only counts if the parallel run computed the same
	// thing; spot-check the per-trial identification outcomes.
	for i := range seqRes {
		if seqRes[i].Identified[website.TargetID] != parRes[i].Identified[website.TargetID] {
			t.Fatalf("trial %d diverged between worker counts", i)
		}
	}
	rec := &perf.BenchRecord{
		Benchmark:        "full-attack sweep",
		Trials:           trials,
		Workers:          workers,
		Cores:            runtime.NumCPU(),
		GoMaxProcs:       runtime.GOMAXPROCS(0),
		NumCPU:           runtime.NumCPU(),
		GoVersion:        runtime.Version(),
		SequentialMS:     seqWall.Milliseconds(),
		ParallelMS:       parWall.Milliseconds(),
		Speedup:          seqWall.Seconds() / parWall.Seconds(),
		SequentialStages: seqPerf.BenchStages(),
		ParallelStages:   parPerf.BenchStages(),
	}
	// Pin the headline allocs/trial at top level (derived from the stage
	// table) so benchdiff and humans read it without summing stages.
	rec.AllocsPerTrial = rec.SeqAllocsPerTrial()
	rec.FleetRows = fleetBenchRows(t)
	if rec.SingleCore() {
		rec.Note = "single-core box: parallel speedup is expected to be <=1x here and is not judged"
	}
	if err := rec.WriteFile(out); err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep %d trials: workers=1 %v, workers=%d %v (%.2fx, %d cores) -> %s",
		trials, seqWall, workers, parWall, rec.Speedup, rec.NumCPU, out)
	if rec.SingleCore() {
		t.Logf("single-core box: speedup figure is informational only")
	}
	if hot := seqPerf.BenchStages(); len(hot) > 0 {
		t.Logf("hottest sequential stage: %s (%.0f ms, %.0f%% of accounted time)",
			hot[0].Stage, hot[0].TotalMS, hot[0].Pct)
	}
	t.Logf("sequential allocs/trial: %.0f", rec.AllocsPerTrial)
}

// TestAllocBudgetPerTrial is the allocation-budget regression gate: it
// runs a small sequential attack sweep with stage attribution armed and
// fails when the attributed allocations per trial exceed
// $ALLOC_BUDGET_PER_TRIAL (skipped when unset — allocation counts vary a
// few percent with Go version, so the budget is pinned where the toolchain
// is, in CI). The budget guards the arena/pool overhaul: a change that
// quietly reintroduces per-trial allocation churn blows it long before the
// wall-clock gate would notice.
func TestAllocBudgetPerTrial(t *testing.T) {
	budgetStr := os.Getenv("ALLOC_BUDGET_PER_TRIAL")
	if budgetStr == "" {
		t.Skip("set ALLOC_BUDGET_PER_TRIAL=N to gate allocations per trial")
	}
	budget, err := strconv.ParseFloat(budgetStr, 64)
	if err != nil || budget <= 0 {
		t.Fatalf("bad ALLOC_BUDGET_PER_TRIAL %q: %v", budgetStr, err)
	}
	const trials = 8
	_, _, rep, err := sweepWorkload(1, trials)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range rep.BenchStages() {
		total += s.AllocObjects
		t.Logf("stage %-16s %10d alloc objects (%.0f/trial)",
			s.Stage, s.AllocObjects, float64(s.AllocObjects)/trials)
	}
	perTrial := float64(total) / trials
	t.Logf("attributed allocations: %.0f/trial (budget %.0f)", perTrial, budget)
	if perTrial > budget {
		t.Fatalf("allocations per trial %.0f exceed the %.0f budget — "+
			"per-trial churn crept back in (see DESIGN.md trial memory lifecycle)",
			perTrial, budget)
	}
}
