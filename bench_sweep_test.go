package h2privacy_test

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/experiment"
	"h2privacy/internal/website"
)

// sweepWorkload is the timed workload for the sweep speedup measurements:
// a full-attack sweep (the heaviest per-trial cost) at a fixed trial count.
func sweepWorkload(workers int, trials int) (time.Duration, []*core.TrialResult, error) {
	opts := experiment.Options{Trials: trials, BaseSeed: 42, Workers: workers}
	start := time.Now()
	plan := adversary.DefaultPlan()
	results, err := opts.Sweep(trials, func(t int) core.TrialConfig {
		return core.TrialConfig{Seed: opts.BaseSeed + int64(t), Attack: &plan}
	})
	return time.Since(start), results, err
}

// BenchmarkSweepWorkers measures the sweep engine at 1 worker and at every
// core, for before/after comparison of the parallel fan-out.
func BenchmarkSweepWorkers(b *testing.B) {
	for _, w := range []int{1, runtime.GOMAXPROCS(0)} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, _, err := sweepWorkload(w, 4); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBenchSweepRecord times the sweep at 1 worker and at every core and
// writes a machine-readable speedup record to $BENCH_SWEEP_OUT (skipped
// when unset). CI uploads the result as BENCH_sweep.json.
func TestBenchSweepRecord(t *testing.T) {
	out := os.Getenv("BENCH_SWEEP_OUT")
	if out == "" {
		t.Skip("set BENCH_SWEEP_OUT=path to record the sweep speedup")
	}
	const trials = 16
	seqWall, seqRes, err := sweepWorkload(1, trials)
	if err != nil {
		t.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	parWall, parRes, err := sweepWorkload(workers, trials)
	if err != nil {
		t.Fatal(err)
	}
	// The speedup claim only counts if the parallel run computed the same
	// thing; spot-check the per-trial identification outcomes.
	for i := range seqRes {
		if seqRes[i].Identified[website.TargetID] != parRes[i].Identified[website.TargetID] {
			t.Fatalf("trial %d diverged between worker counts", i)
		}
	}
	rec := struct {
		Benchmark    string  `json:"benchmark"`
		Trials       int     `json:"trials"`
		Workers      int     `json:"workers"`
		Cores        int     `json:"cores"`
		GoVersion    string  `json:"go_version"`
		SequentialMS int64   `json:"sequential_ms"`
		ParallelMS   int64   `json:"parallel_ms"`
		Speedup      float64 `json:"speedup"`
	}{
		Benchmark:    "full-attack sweep",
		Trials:       trials,
		Workers:      workers,
		Cores:        runtime.NumCPU(),
		GoVersion:    runtime.Version(),
		SequentialMS: seqWall.Milliseconds(),
		ParallelMS:   parWall.Milliseconds(),
		Speedup:      seqWall.Seconds() / parWall.Seconds(),
	}
	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rec); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	t.Logf("sweep %d trials: workers=1 %v, workers=%d %v (%.2fx) -> %s",
		trials, seqWall, workers, parWall, rec.Speedup, out)
}
