package h2privacy_test

import (
	"fmt"
	"io"
	"testing"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/check"
	"h2privacy/internal/core"
	"h2privacy/internal/experiment"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/h2"
	"h2privacy/internal/hpack"
	"h2privacy/internal/metrics"
	"h2privacy/internal/obs"
	"h2privacy/internal/simtime"
	"h2privacy/internal/tlsrec"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

// benchExperiment runs one experiment harness per iteration at a small
// trial count (the paper uses 100 trials; benchmarks measure the machinery,
// the cmd/h2bench tool regenerates the full tables).
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	runner, ok := experiment.Lookup(id)
	if !ok {
		b.Fatalf("unknown experiment %s", id)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rep, err := runner(experiment.Options{Trials: 2, BaseSeed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		rep.Render(io.Discard)
	}
}

// One benchmark per table and figure in the paper's evaluation.

func BenchmarkFig1SizeEstimation(b *testing.B)       { benchExperiment(b, "fig1") }
func BenchmarkFig2RequestSpacing(b *testing.B)       { benchExperiment(b, "fig2") }
func BenchmarkFig3BaselineMultiplexing(b *testing.B) { benchExperiment(b, "fig3") }
func BenchmarkTable1JitterSweep(b *testing.B)        { benchExperiment(b, "table1") }
func BenchmarkFig4RetransmissionStorm(b *testing.B)  { benchExperiment(b, "fig4") }
func BenchmarkFig5BandwidthSweep(b *testing.B)       { benchExperiment(b, "fig5") }
func BenchmarkFig6StreamReset(b *testing.B)          { benchExperiment(b, "fig6") }
func BenchmarkTable2FullAttack(b *testing.B)         { benchExperiment(b, "table2") }
func BenchmarkAblationStages(b *testing.B)           { benchExperiment(b, "ablation") }
func BenchmarkDefenseRandomization(b *testing.B)     { benchExperiment(b, "defense") }
func BenchmarkDefenseServerPush(b *testing.B)        { benchExperiment(b, "pushdef") }
func BenchmarkPartialInference(b *testing.B)         { benchExperiment(b, "partial") }
func BenchmarkSensitivitySweep(b *testing.B)         { benchExperiment(b, "sensitivity") }
func BenchmarkCrossTraffic(b *testing.B)             { benchExperiment(b, "crosstraffic") }
func BenchmarkTCPAblation(b *testing.B)              { benchExperiment(b, "tcpablation") }
func BenchmarkDefensePadding(b *testing.B)           { benchExperiment(b, "padding") }
func BenchmarkH1Baseline(b *testing.B)               { benchExperiment(b, "h1base") }

// BenchmarkTrialBaseline measures one complete simulated page load
// (handshake, 48 objects, monitor, predictor).
func BenchmarkTrialBaseline(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.RunTrial(core.TrialConfig{Seed: int64(i)})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Completed) == 0 {
			b.Fatal("empty trial")
		}
	}
}

// BenchmarkTrialFullAttack measures one staged-attack trial end to end.
func BenchmarkTrialFullAttack(b *testing.B) {
	plan := adversary.DefaultPlan()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunTrial(core.TrialConfig{Seed: int64(i), Attack: &plan}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate microbenchmarks ---

func BenchmarkHPACKEncodeRequest(b *testing.B) {
	enc := hpack.NewEncoder(hpack.DefaultDynamicTableSize)
	fields := []hpack.HeaderField{
		{Name: ":method", Value: "GET"},
		{Name: ":scheme", Value: "https"},
		{Name: ":authority", Value: "www.isidewith.test"},
		{Name: ":path", Value: "/emblems/democratic.png"},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if block := enc.Encode(nil, fields); len(block) == 0 {
			b.Fatal("empty block")
		}
	}
}

func BenchmarkHPACKRoundTrip(b *testing.B) {
	enc := hpack.NewEncoder(hpack.DefaultDynamicTableSize)
	dec := hpack.NewDecoder(hpack.DefaultDynamicTableSize)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fields := []hpack.HeaderField{
			{Name: ":method", Value: "GET"},
			{Name: ":path", Value: fmt.Sprintf("/static/%d.js", i%32)},
		}
		block := enc.Encode(nil, fields)
		if _, err := dec.Decode(block); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFrameCodecData(b *testing.B) {
	payload := make([]byte, 1200)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		wire := h2.AppendData(nil, 5, payload, false, 0)
		if _, err := h2.ParseFrame(wire); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTLSRecordSeal(b *testing.B) {
	var cr, sr [32]byte
	var client *tlsrec.Conn
	server := tlsrec.NewConn(false, sr, func(p []byte) { _ = client.Feed(p) })
	client = tlsrec.NewConn(true, cr, func(p []byte) { _ = server.Feed(p) })
	server.OnRecord(func(tlsrec.ContentType, []byte) {})
	client.Start()
	payload := make([]byte, 1200)
	b.SetBytes(int64(len(payload)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if err := client.Send(tlsrec.ContentApplicationData, payload); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDegreeOfMultiplexing(b *testing.B) {
	var spans []metrics.TxSpan
	off := int64(0)
	for i := 0; i < 2000; i++ {
		inst := fmt.Sprintf("obj%d#0", i%50)
		spans = append(spans, metrics.TxSpan{Instance: inst, ObjectID: inst, Offset: off, Len: 1200})
		off += 1200
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if dom := metrics.DegreeOfMultiplexing(spans); len(dom) == 0 {
			b.Fatal("no result")
		}
	}
}

func BenchmarkSchedulerThroughput(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := simtime.NewScheduler()
		var n int
		for j := 0; j < 1000; j++ {
			s.At(time.Duration(j)*time.Microsecond, func() { n++ })
		}
		s.Run()
		if n != 1000 {
			b.Fatal("missed events")
		}
	}
}

func BenchmarkSitePlan(b *testing.B) {
	site := website.ISideWith()
	rng := simtime.NewRand(1)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := site.PlanFor(website.RandomPerm(rng)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- trace subsystem ---

// BenchmarkTraceOverhead compares the emit hot path disabled (nil tracer,
// the default for every benchmark above) and enabled, plus a full traced
// attack trial against BenchmarkTrialFullAttack's untraced baseline.
func BenchmarkTraceOverhead(b *testing.B) {
	b.Run("emit-disabled", func(b *testing.B) {
		var tr *trace.Tracer
		ct := tr.Counter(trace.LayerNetsim, "enqueue")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ct.Inc()
			if tr.Enabled() {
				tr.Emit(trace.LayerNetsim, "enqueue",
					trace.Num("id", int64(i)), trace.Num("size", 1500))
			}
		}
	})
	b.Run("emit-enabled", func(b *testing.B) {
		tr := trace.New(nil, trace.Config{})
		ct := tr.Counter(trace.LayerNetsim, "enqueue")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ct.Inc()
			if tr.Enabled() {
				tr.Emit(trace.LayerNetsim, "enqueue",
					trace.Num("id", int64(i)), trace.Num("size", 1500))
			}
		}
	})
	b.Run("trial-traced", func(b *testing.B) {
		plan := adversary.DefaultPlan()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr := trace.New(nil, trace.Config{})
			if _, err := core.RunTrial(core.TrialConfig{Seed: int64(i), Attack: &plan, Trace: tr}); err != nil {
				b.Fatal(err)
			}
			if tr.Len() == 0 {
				b.Fatal("traced trial emitted nothing")
			}
		}
	})
}

// --- obs subsystem ---

// BenchmarkObsOverhead measures the metrics registry through a whole
// trial, mirroring BenchmarkTraceOverhead: the unarmed path (nil registry,
// every instrument a nil no-op — the default for everything above), the
// armed instrument hot paths, and a fully metered attack trial against
// BenchmarkTrialFullAttack's unmetered baseline. The per-instrument
// numbers live in internal/obs/bench_test.go; this pins the end-to-end
// cost: an unmetered trial must not regress when the instrumentation is
// compiled in, and a metered trial's overhead stays in the noise because
// the per-trial publish happens once at collect() time, not per packet.
func BenchmarkObsOverhead(b *testing.B) {
	b.Run("inc-unarmed", func(b *testing.B) {
		var reg *obs.Registry
		c := reg.Counter("x_total", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("inc-armed", func(b *testing.B) {
		c := obs.NewRegistry().Counter("x_total", "")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("trial-metered", func(b *testing.B) {
		plan := adversary.DefaultPlan()
		reg := obs.NewRegistry()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := core.RunTrial(core.TrialConfig{Seed: int64(i), Attack: &plan, Metrics: reg}); err != nil {
				b.Fatal(err)
			}
		}
		if reg.Snapshot().Families == nil {
			b.Fatal("metered trial published nothing")
		}
	})
}

// --- check subsystem ---

// BenchmarkCheckOverhead mirrors BenchmarkTraceOverhead for the invariant
// checker: the hook hot path with checking off (nil checker, the default
// for every benchmark above) and armed, plus a fully checked attack trial
// against BenchmarkTrialFullAttack's unchecked baseline.
func BenchmarkCheckOverhead(b *testing.B) {
	b.Run("hooks-disabled", func(b *testing.B) {
		var ck *check.Checker
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq := uint64(i) * 1200
			ck.TCPSegment("client", seq, seq+1200, false)
			ck.SchedulerStep(time.Duration(i))
			ck.LinkOffered(check.DirC2S, 1500)
		}
	})
	b.Run("hooks-armed", func(b *testing.B) {
		rec := check.NewRecorder()
		ck := check.New(1, 0, rec)
		ck.TCPRegister("client", 0)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			seq := uint64(i) * 1200
			ck.TCPSegment("client", seq, seq+1200, false)
			ck.SchedulerStep(time.Duration(i))
			ck.LinkOffered(check.DirC2S, 1500)
		}
		if rec.Total() != 0 {
			b.Fatalf("benchmark traffic violated invariants:\n%s", rec.Report())
		}
	})
	b.Run("trial-checked", func(b *testing.B) {
		plan := adversary.DefaultPlan()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			rec := check.NewRecorder()
			cfg := core.TrialConfig{Seed: int64(i), Attack: &plan,
				Check: check.New(int64(i), 0, rec)}
			res, err := core.RunTrial(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.CheckViolations != 0 {
				b.Fatalf("checked trial violated invariants:\n%s", rec.Report())
			}
		}
	})
}

// TestDisabledCheckZeroAllocs pins the invariant-checker contract: a nil
// *check.Checker (the default everywhere) makes every hook a nil-receiver
// no-op, so a check-capable build runs the simulation with zero extra
// allocations on every hot path that carries a hook.
func TestDisabledCheckZeroAllocs(t *testing.T) {
	var ck *check.Checker
	if ck.Enabled() {
		t.Fatal("nil checker reported enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		ck.TCPSegment("client", 0, 1200, false)
		ck.TCPAck("client", 1200, 1200)
		ck.TCPDeliver("server", 1200)
		ck.TCPRewind("client", 2400, 1200)
		ck.H2FrameSent("client", 0, 1, 1200, 0, 0)
		ck.H2FrameRecv("server", 0, 1, 1200, 0, 0)
		ck.H2DataSent("client", 1, 1200)
		ck.H2AppData("server", 1)
		ck.HpackEncoded("client", 4096)
		ck.HpackDecoded("server", 4096)
		ck.LinkOffered(check.DirC2S, 1500)
		ck.LinkDropped(check.DirC2S, 1500, 0)
		ck.LinkForwarded(check.DirC2S, 1500, false)
		ck.LinkDelivered(check.DirC2S, 1500)
		ck.SchedulerStep(time.Millisecond)
		ck.CaptureAppend(check.DirC2S, 1200, 1200, 1200, 1200)
		ck.CaptureRecord(check.DirC2S, 600, 600)
	})
	if allocs != 0 {
		t.Fatalf("disabled check path allocates %.1f allocs per op, want 0", allocs)
	}
}

// TestDisabledTraceZeroAllocs pins the design contract: with tracing off
// (nil tracer), the guarded emit pattern every component uses — nil-safe
// counter/histogram calls plus an Enabled()-guarded Emit — allocates
// nothing, so a trace-capable build benchmarks identically to one without
// the subsystem.
func TestDisabledTraceZeroAllocs(t *testing.T) {
	var tr *trace.Tracer
	ct := tr.Counter(trace.LayerTCP, "rto")
	h := tr.Histo(trace.LayerTCP, "srtt_ms")
	allocs := testing.AllocsPerRun(1000, func() {
		ct.Inc()
		h.Observe(12.5)
		h.ObserveDuration(3 * time.Millisecond)
		if tr.Enabled() {
			tr.Emit(trace.LayerTCP, "rto",
				trace.Str("conn", "client"), trace.Num("retries", 1),
				trace.Dur("rto", time.Second), trace.Num("flight", 14600))
		}
	})
	if allocs != 0 {
		t.Fatalf("disabled trace path allocates %.1f bytes-producing allocs per op, want 0", allocs)
	}
}

// --- flowseq subsystem ---

// BenchmarkFlowseqOverhead mirrors BenchmarkTraceOverhead for the flow
// event-sequence analyzer: the record/frame hot paths with analytics off
// (nil analyzer, the default for every benchmark above) and armed, plus a
// fully analyzed attack trial against BenchmarkTrialFullAttack's baseline.
func BenchmarkFlowseqOverhead(b *testing.B) {
	b.Run("hooks-disabled", func(b *testing.B) {
		var fl *flowseq.Analyzer
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fl.Enabled() {
				fl.Record(i%2 == 0, 1500, 1460, false, false, false)
			}
			if fl.Enabled() {
				fl.H2Frame(true, false, 0x0, 1, 1200, 0)
			}
		}
	})
	b.Run("hooks-armed", func(b *testing.B) {
		fl := flowseq.New(0, flowseq.NewCollector())
		fl.Request("obj", 1, "initial")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if fl.Enabled() {
				fl.Record(i%2 == 0, 1500, 1460, false, false, false)
			}
			if fl.Enabled() {
				fl.H2Frame(true, false, 0x0, 1, 1200, 0)
			}
		}
		if ff := fl.Finalize(); len(ff.Streams) != 1 {
			b.Fatal("armed analyzer tracked nothing")
		}
	})
	b.Run("trial-analyzed", func(b *testing.B) {
		plan := adversary.DefaultPlan()
		col := flowseq.NewCollector()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := core.RunTrial(core.TrialConfig{Seed: int64(i), Attack: &plan,
				Flows: flowseq.New(i, col)})
			if err != nil {
				b.Fatal(err)
			}
			if res.Features == nil || len(res.Features.Streams) == 0 {
				b.Fatal("analyzed trial extracted nothing")
			}
		}
	})
}

// TestDisabledFlowseqZeroAllocs pins the flowseq contract: a nil
// *flowseq.Analyzer (the default everywhere) makes every hook a
// nil-receiver no-op, so a feature-capable build runs the simulation with
// zero extra allocations when -features is off.
func TestDisabledFlowseqZeroAllocs(t *testing.T) {
	var fl *flowseq.Analyzer
	if fl.Enabled() {
		t.Fatal("nil analyzer reported enabled")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		fl.Record(true, 1500, 1460, false, false, false)
		fl.H2Frame(true, true, 0x0, 1, 1200, 0)
		fl.H2Frame(true, false, 0x1, 1, 30, 0x4)
		fl.Request("obj", 1, "initial")
		fl.ObjectDone("obj", 1)
	})
	if allocs != 0 {
		t.Fatalf("disabled flowseq path allocates %.1f allocs per op, want 0", allocs)
	}
}
