// Realtcp: the same HTTP/2 implementation that powers the simulation,
// running over a real TCP loopback socket — goroutine-per-stream server,
// blocking client, record layer and HPACK included. Fetches the model
// website's quiz page and emblem images concurrently and shows the
// multiplexed transfer the paper's §II describes.
//
//	go run ./examples/realtcp
package main

import (
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"h2privacy/internal/h2"
	"h2privacy/internal/h2/h2sync"
	"h2privacy/internal/website"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "realtcp:", err)
		os.Exit(1)
	}
}

func run() error {
	site := website.ISideWith()
	srv := &h2sync.Server{Handler: func(w *h2sync.ResponseWriter, r *h2sync.Request) {
		obj := site.Lookup(r.Path)
		if obj == nil {
			_ = w.WriteHeader(404)
			return
		}
		_ = w.WriteHeader(200, h2.HeaderField{Name: "content-type", Value: obj.Type})
		_, _ = w.Write(site.Body(obj))
	}}

	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	defer l.Close()
	go func() { _ = srv.ListenAndServe(l) }()
	fmt.Println("HTTP/2 server listening on", l.Addr())

	nc, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		return err
	}
	var random [32]byte
	random[0] = 42
	cli, err := h2sync.NewClient(nc, h2.Config{}, random)
	if err != nil {
		return err
	}
	defer cli.Close()

	// Fetch the quiz page plus all eight emblems concurrently — one TCP
	// connection, nine multiplexed streams.
	paths := []string{site.Object(website.TargetID).Path}
	for p := 0; p < website.PartyCount; p++ {
		paths = append(paths, site.Object(website.EmblemID(p)).Path)
	}
	start := time.Now()
	var wg sync.WaitGroup
	results := make([]string, len(paths))
	for i, path := range paths {
		wg.Add(1)
		go func(i int, path string) {
			defer wg.Done()
			resp, err := cli.Get(site.Host, path)
			if err != nil {
				results[i] = fmt.Sprintf("%-40s ERROR %v", path, err)
				return
			}
			results[i] = fmt.Sprintf("%-40s %d bytes (status %d)", path, len(resp.Body), resp.Status)
		}(i, path)
	}
	wg.Wait()
	for _, r := range results {
		fmt.Println(" ", r)
	}
	fmt.Printf("9 objects over one multiplexed connection in %v\n", time.Since(start).Round(time.Millisecond))
	return nil
}
