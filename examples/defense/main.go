// Defense: evaluate the countermeasures against the staged attack —
// the paper's §VII randomized request order, and DATA-frame padding.
//
//	go run ./examples/defense [-trials N]
package main

import (
	"flag"
	"fmt"
	"os"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/simtime"
	"h2privacy/internal/website"
)

func main() {
	trials := flag.Int("trials", 15, "trials per condition")
	flag.Parse()
	if err := run(*trials); err != nil {
		fmt.Fprintln(os.Stderr, "defense:", err)
		os.Exit(1)
	}
}

type condition struct {
	name string
	cfg  func(seed int64) core.TrialConfig
}

func run(trials int) error {
	plan := adversary.DefaultPlan()
	conds := []condition{
		{"no defense", func(seed int64) core.TrialConfig {
			return core.TrialConfig{Seed: seed, Attack: &plan}
		}},
		{"randomized request order (§VII)", func(seed int64) core.TrialConfig {
			return core.TrialConfig{Seed: seed, Attack: &plan, ShuffledEmblemOrder: true}
		}},
		{"random DATA padding", func(seed int64) core.TrialConfig {
			cfg := core.TrialConfig{Seed: seed, Attack: &plan}
			rng := simtime.NewRand(seed * 31)
			cfg.Server.H2.PadData = func(n int) int { return rng.Intn(256) }
			return cfg
		}},
	}
	fmt.Printf("%-34s  %-18s  %-18s\n", "condition", "ranks inferred", "emblems identified")
	for i, c := range conds {
		var rank, ident metrics.Counter
		for t := 0; t < trials; t++ {
			res, err := core.RunTrial(c.cfg(int64(100*i + t)))
			if err != nil {
				return err
			}
			for k := 0; k < website.PartyCount; k++ {
				rank.Observe(res.SequenceRankCorrect(k))
				ident.Observe(res.ObjectSuccess(res.DisplaySeq[k]))
			}
		}
		fmt.Printf("%-34s  %-18s  %-18s\n", c.name, rank.String(), ident.String())
	}
	fmt.Println("\nRandomizing the request order hides the *ranking* but still admits")
	fmt.Println("page identification; padding attacks the size channel itself.")
	return nil
}
