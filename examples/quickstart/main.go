// Quickstart: assemble the simulated testbed, run one baseline page load
// and one attacked page load, and print what the on-path adversary learned.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/website"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	const seed = 3

	fmt.Println("— baseline: no adversary —")
	base, err := core.RunTrial(core.TrialConfig{Seed: seed})
	if err != nil {
		return err
	}
	report(base)

	fmt.Println("\n— the paper's §V staged attack —")
	plan := adversary.DefaultPlan()
	attacked, err := core.RunTrial(core.TrialConfig{Seed: seed, Attack: &plan})
	if err != nil {
		return err
	}
	report(attacked)

	fmt.Println("\nThe quiz HTML identifies the survey result page; the emblem")
	fmt.Println("sequence reveals the user's political ranking. Multiplexing hid")
	fmt.Println("both at baseline; the adversary serialized them back out.")
	return nil
}

func report(res *core.TrialResult) {
	quizDom := res.BestDoM[website.TargetID]
	fmt.Printf("quiz HTML: degree of multiplexing %.0f%%, identified from traffic: %t\n",
		quizDom*100, res.Identified[website.TargetID])
	fmt.Printf("emblem sequence inferred: %d/%d ranks correct (truth: %v)\n",
		correctRanks(res), website.PartyCount, shortSeq(res.DisplaySeq))
	fmt.Printf("browser: %d duplicate GETs, %d reset cycles, broken=%t\n",
		res.AppRetries, res.Resets, res.Broken)
}

func correctRanks(res *core.TrialResult) int {
	n := 0
	for k := 0; k < website.PartyCount; k++ {
		if res.SequenceRankCorrect(k) {
			n++
		}
	}
	return n
}

func shortSeq(ids []string) []string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = id[len("emblem-"):]
	}
	return out
}
