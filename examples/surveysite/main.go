// Surveysite: run the full Table II scenario — many simulated volunteers
// take the survey, each with a random party ranking, while the compromised
// gateway runs the staged attack. Prints per-volunteer verdicts and the
// aggregate accuracy.
//
//	go run ./examples/surveysite [-volunteers N]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"h2privacy/internal/adversary"
	"h2privacy/internal/core"
	"h2privacy/internal/metrics"
	"h2privacy/internal/website"
)

func main() {
	volunteers := flag.Int("volunteers", 20, "number of simulated survey takers")
	seed := flag.Int64("seed", 7, "base seed")
	flag.Parse()
	if err := run(*volunteers, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "surveysite:", err)
		os.Exit(1)
	}
}

func run(volunteers int, baseSeed int64) error {
	plan := adversary.DefaultPlan()
	var htmlOK metrics.Counter
	rankOK := make([]metrics.Counter, website.PartyCount)
	fmt.Printf("%-4s  %-9s  %-30s  %-30s  %s\n", "vol", "quiz", "true ranking", "inferred ranking", "outcome")
	for v := 0; v < volunteers; v++ {
		res, err := core.RunTrial(core.TrialConfig{Seed: baseSeed + int64(v), Attack: &plan})
		if err != nil {
			return err
		}
		htmlOK.Observe(res.ObjectSuccess(website.TargetID))
		correct := 0
		for k := 0; k < website.PartyCount; k++ {
			ok := res.SequenceRankCorrect(k)
			rankOK[k].Observe(ok)
			if ok {
				correct++
			}
		}
		outcome := fmt.Sprintf("%d/%d ranks", correct, website.PartyCount)
		if res.Broken {
			outcome += " (connection broke: " + res.BrokenReason + ")"
		}
		fmt.Printf("%-4d  %-9t  %-30s  %-30s  %s\n",
			v, res.ObjectSuccess(website.TargetID),
			seqString(res.DisplaySeq), seqString(res.InferredSeq), outcome)
	}
	fmt.Printf("\nquiz HTML identified: %s\n", htmlOK.String())
	fmt.Print("per-rank accuracy:   ")
	parts := make([]string, website.PartyCount)
	for k := range rankOK {
		parts[k] = fmt.Sprintf("I%d=%.0f%%", k+1, rankOK[k].Percent())
	}
	fmt.Println(strings.Join(parts, " "))
	return nil
}

func seqString(ids []string) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		name := strings.TrimPrefix(id, "emblem-")
		if len(name) > 3 {
			name = name[:3]
		}
		out[i] = name
	}
	return strings.Join(out, ">")
}
