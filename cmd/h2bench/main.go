// Command h2bench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	h2bench [-trials N] [-seed S] all
//	h2bench [-trials N] [-seed S] table1 fig5 table2 …
//	h2bench [-trace out.json] [-trace-format chrome|jsonl|summary] table2
//	h2bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"h2privacy/internal/experiment"
	"h2privacy/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	trials := flag.Int("trials", 100, "trials per configuration point")
	seed := flag.Int64("seed", 1, "base seed")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	tracePath := flag.String("trace", "", "export the first trial's cross-layer trace to this file")
	traceFormat := flag.String("trace-format", trace.FormatChrome,
		"trace export format: "+strings.Join(trace.Formats(), ", "))
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: h2bench [flags] all|<experiment-id>...\nexperiments: %s\n", strings.Join(experiment.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiment.IDs(), "\n"))
		return 0
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}
	opts := experiment.Options{Trials: *trials, BaseSeed: *seed}
	if *tracePath != "" {
		opts.Trace = trace.New(nil, trace.Config{})
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiment.IDs()
	}
	for _, id := range args {
		runner, ok := experiment.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "h2bench: unknown experiment %q (try -list)\n", id)
			return 2
		}
		rep, err := runner(opts)
		if err != nil {
			fmt.Fprintln(os.Stderr, "h2bench:", err)
			return 1
		}
		if *csvOut {
			fmt.Printf("# %s\n", rep.ID)
			if err := rep.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "h2bench:", err)
				return 1
			}
			fmt.Println()
		} else {
			rep.Render(os.Stdout)
		}
	}
	if opts.Trace != nil {
		f, err := os.Create(*tracePath)
		if err == nil {
			err = opts.Trace.WriteFormat(f, *traceFormat)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "h2bench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "h2bench: wrote %d trace events (%s) to %s\n",
			opts.Trace.Len(), *traceFormat, *tracePath)
	}
	return 0
}
