// Command h2bench regenerates the paper's tables and figures from the
// simulated testbed.
//
// Usage:
//
//	h2bench [-trials N] [-seed S] [-parallel W] all
//	h2bench [-trials N] [-seed S] table1 fig5 table2 …
//	h2bench [-trace out.json] [-trace-format chrome|jsonl|summary] table2
//	h2bench [-manifest run.json] [-debug-addr :9090] [-quiet] all
//	h2bench [-features] [-features-out features.csv] table2
//	h2bench [-perf] [-perf-out perf.json] [-cpuprofile cpu.pprof] [-memprofile heap.pprof] all
//	h2bench -list
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"h2privacy/internal/check"
	"h2privacy/internal/cliutil"
	"h2privacy/internal/experiment"
	"h2privacy/internal/obs"
	"h2privacy/internal/trace"
)

func main() {
	os.Exit(run())
}

func run() int {
	trials := flag.Int("trials", 100, "trials per configuration point")
	seed := flag.Int64("seed", 1, "base seed")
	parallel := flag.Int("parallel", 0, "sweep worker pool size (0 = GOMAXPROCS, 1 = sequential); output is byte-identical at any setting")
	noPool := flag.Bool("no-pool", false, "disable per-worker trial buffer recycling (diagnostic; output is byte-identical either way)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	csvOut := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	manifestPath := flag.String("manifest", "", "write a run manifest (options, per-experiment wall time, metrics snapshot) to this JSON file")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress reporter")
	var tf cliutil.TraceFlags
	tf.RegisterTrace(flag.CommandLine, "the first trial's cross-layer trace")
	var df cliutil.DebugFlags
	df.RegisterDebug(flag.CommandLine)
	var cf cliutil.CheckFlags
	cf.RegisterCheck(flag.CommandLine)
	var pf cliutil.PerfFlags
	pf.RegisterPerf(flag.CommandLine)
	var ffl cliutil.FeatureFlags
	ffl.RegisterFeatures(flag.CommandLine)
	var sf cliutil.SuperviseFlags
	sf.RegisterSupervise(flag.CommandLine)
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: h2bench [flags] all|<experiment-id>...\nexperiments: %s\n", strings.Join(experiment.IDs(), " "))
		flag.PrintDefaults()
	}
	flag.Parse()
	if *list {
		fmt.Println(strings.Join(experiment.IDs(), "\n"))
		return 0
	}
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		return 2
	}
	opts := experiment.Options{Trials: *trials, BaseSeed: *seed, Workers: *parallel, NoPool: *noPool}
	// Trial supervision: watchdogs, retry/quarantine (degraded completion
	// instead of aborting the whole regeneration run on one bad trial),
	// and cooperative SIGINT drain — a partial manifest still gets written.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	opts.Ctx = ctx
	quar, err := sf.Apply(&opts)
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 2
	}
	// Experiments derive per-variant seeds internally, so the repro replays
	// the owning experiment with the same options (cheap at low -trials);
	// the flat index pins which trial died. -chaos specs address flat
	// indices of every sub-sweep alike, so they carry over verbatim.
	quar.SetRepro(func(f experiment.TrialFailure) string {
		cmd := fmt.Sprintf("go run ./cmd/h2bench -trials %d -seed %d", *trials, *seed)
		if sf.Chaos != "" {
			cmd += " -chaos " + sf.Chaos
		}
		if f.Kind == experiment.FailTimeout {
			cmd += fmt.Sprintf(" -step-budget %d", sf.StepBudget)
		}
		return fmt.Sprintf("%s <experiment-id>  # failed trial: seed %d, flat index %d", cmd, f.Seed, f.Trial)
	})
	rec := cf.NewRecorder()
	if rec != nil {
		// An experiment derives per-variant seeds internally, so the repro
		// command replays the whole (cheap at -trials 1..few) experiment
		// with checks armed rather than guessing the variant arm.
		repro := fmt.Sprintf("go run ./cmd/h2bench -check -trials %d -seed %d", *trials, *seed)
		rec.SetRepro(func(v check.Violation) string {
			return fmt.Sprintf("%s <experiment-id>  # violating trial: seed %d, flat index %d", repro, v.TrialSeed, v.TrialIndex)
		})
		opts.Check = rec
	}
	tracer, err := tf.NewTracer(trace.Config{Concurrent: df.Armed()}, df.Armed())
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 2
	}
	opts.Trace = tracer
	// A manifest or a debug endpoint arms the sweep-wide metrics registry:
	// every trial accumulates into it, /metrics serves it live, and the
	// manifest records its final snapshot.
	if *manifestPath != "" || df.Armed() {
		opts.Metrics = obs.NewRegistry()
		obs.PublishTrace(opts.Metrics, tracer)
	}
	// Any perf flag arms per-stage cost attribution; with a registry, the
	// stage histograms are also scrapeable live on /metrics.
	col := pf.NewCollector()
	opts.Perf = col
	col.PublishTo(opts.Metrics)
	// -features/-features-out arm flowseq analytics on every trial; with
	// -debug-addr the collector is forced so /debug/flows serves live burst
	// tables mid-sweep and the flow_* families land in the registry.
	fcol := ffl.NewCollector(df.Armed())
	opts.Features = fcol
	fcol.PublishTo(opts.Metrics)
	ds, err := df.Serve(opts.Metrics, tracer, fcol, os.Stderr, "h2bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	if ds != nil {
		defer ds.Close()
	}
	if !*quiet {
		opts.Progress = experiment.NewProgress(os.Stderr)
	} else if *manifestPath != "" {
		// The manifest still needs trial counts; count without rendering.
		opts.Progress = experiment.NewProgress(nil)
	}
	var manifest *experiment.Manifest
	if *manifestPath != "" {
		manifest = experiment.NewManifest("h2bench", opts)
	}
	if len(args) == 1 && args[0] == "all" {
		args = experiment.IDs()
	}
	if err := pf.StartProfiles(os.Stderr, "h2bench"); err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	interrupted := false
	for _, id := range args {
		runner, ok := experiment.Lookup(id)
		if !ok {
			fmt.Fprintf(os.Stderr, "h2bench: unknown experiment %q (try -list)\n", id)
			return 2
		}
		opts.Progress.Start(id, experiment.PlannedTrials(id, opts))
		opts.Perf.BeginExperiment(id)
		rep, err := runner(opts)
		if err != nil {
			if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
				// Cooperative drain: stop starting experiments, but still
				// flush every artifact accumulated so far (partial manifest,
				// features, check report) on the way out.
				interrupted = true
				opts.Progress.Done()
				fmt.Fprintf(os.Stderr, "h2bench: interrupted during %s — exporting partial artifacts\n", id)
				break
			}
			fmt.Fprintln(os.Stderr, "h2bench:", err)
			return 1
		}
		nTrials, wall := opts.Progress.Done()
		manifest.Record(id, rep.Title, nTrials, len(rep.Rows), wall)
		if *csvOut {
			fmt.Printf("# %s\n", rep.ID)
			if err := rep.RenderCSV(os.Stdout); err != nil {
				fmt.Fprintln(os.Stderr, "h2bench:", err)
				return 1
			}
			fmt.Println()
		} else {
			rep.Render(os.Stdout)
		}
	}
	if err := pf.StopProfiles(os.Stderr, "h2bench"); err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	if err := pf.Report(col, os.Stderr, "h2bench"); err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	if err := tf.Export(opts.Trace, os.Stderr, "h2bench"); err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	if err := ffl.Export(fcol, os.Stderr, "h2bench"); err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	if manifest != nil {
		manifest.Finish(opts.Metrics)
		manifest.FinishPerf(col)
		if ffl.Armed() {
			manifest.FinishFeatures(fcol, ffl.OutPath)
		}
		manifest.FinishQuarantine(quar)
		if err := manifest.WriteFile(*manifestPath); err != nil {
			fmt.Fprintln(os.Stderr, "h2bench:", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "h2bench: wrote run manifest (%d experiments%s) to %s\n",
			len(manifest.Runs), map[bool]string{true: ", partial"}[interrupted], *manifestPath)
	}
	qn, err := sf.Report(quar, os.Stderr, "h2bench")
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	}
	if n, err := cf.Report(rec, os.Stderr, "h2bench"); err != nil {
		fmt.Fprintln(os.Stderr, "h2bench:", err)
		return 1
	} else if n > 0 {
		return 1
	}
	if interrupted {
		return 130
	}
	return sf.Exit(qn)
}
