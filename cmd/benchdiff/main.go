// Command benchdiff compares two sweep benchmark records (the committed
// BENCH_sweep.json baseline vs a fresh TestBenchSweepRecord run) and
// exits nonzero when performance regressed — the CI bench gate.
//
// The gate judges sequential per-trial cost: wall times normalized per
// trial so trial-count changes don't read as regressions. It also judges
// allocation counts (-alloc-threshold): total and per-stage sequential
// allocs/trial vs the baseline — allocations are near-deterministic, so
// this gate runs far tighter than the wall-clock one and catches pooling
// regressions that noisy CI timing would hide. Parallel speedup is
// reported, and judged against -speedup-floor only on multi-core machines
// (a single-core box cannot show a parallel win, so the judgment is
// skipped there with a note).
//
// Usage:
//
//	benchdiff [-threshold PCT] [-alloc-threshold PCT] [-speedup-floor X] old.json new.json
package main

import (
	"flag"
	"fmt"
	"os"

	"h2privacy/internal/perf"
)

func main() {
	threshold := flag.Float64("threshold", 25,
		"fail when sequential ms/trial regresses more than this percentage vs the baseline")
	allocThreshold := flag.Float64("alloc-threshold", 0,
		"fail when sequential allocs/trial (total or any stage) regresses more than this percentage vs the baseline (0 = report only)")
	speedupFloor := flag.Float64("speedup-floor", 0,
		"fail when parallel speedup falls below this on a multi-core machine (0 = report only)")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold PCT] [-alloc-threshold PCT] [-speedup-floor X] old.json new.json")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	old, err := perf.ReadBenchRecord(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	cur, err := perf.ReadBenchRecord(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	d := perf.DiffBench(old, cur, *threshold, *speedupFloor, *allocThreshold)
	fmt.Printf("benchdiff: %s vs %s\n", flag.Arg(0), flag.Arg(1))
	fmt.Printf("  sequential ms/trial: %.1f -> %.1f (%+.1f%%, threshold %.0f%%)\n",
		d.SeqPerTrialOldMS, d.SeqPerTrialNewMS, d.SeqRegressionPct, *threshold)
	fmt.Printf("  parallel speedup:    %.2fx -> %.2fx\n", d.SpeedupOld, d.SpeedupNew)
	if d.AllocsPerTrialOld > 0 || d.AllocsPerTrialNew > 0 {
		fmt.Printf("  seq allocs/trial:    %.0f -> %.0f (%+.1f%%)\n",
			d.AllocsPerTrialOld, d.AllocsPerTrialNew, d.AllocRegressionPct)
	}
	for _, n := range d.Notes {
		fmt.Printf("  note: %s\n", n)
	}
	if d.Failed {
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: ok")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
