// Command h2serve serves the model website over real TCP with the
// repository's HTTP/2 stack (tlsrec + h2 + goroutine-per-stream server).
// Poke it with examples/realtcp's client or any same-stack client.
//
//	h2serve [-addr 127.0.0.1:8443] [-trace out.json] [-trace-format chrome|jsonl|summary]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"h2privacy/internal/h2"
	"h2privacy/internal/h2/h2sync"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8443", "listen address")
	tracePath := flag.String("trace", "", "export the server's h2-layer trace to this file on SIGINT")
	traceFormat := flag.String("trace-format", trace.FormatChrome,
		"trace export format: "+strings.Join(trace.Formats(), ", "))
	flag.Parse()
	if err := run(*addr, *tracePath, *traceFormat); err != nil {
		fmt.Fprintln(os.Stderr, "h2serve:", err)
		os.Exit(1)
	}
}

func run(addr, tracePath, traceFormat string) error {
	site := website.ISideWith()
	// Real-TCP serving has no virtual clock and one goroutine per stream,
	// so the tracer stamps wall time and takes the mutex path. The trace
	// is best-effort diagnostics here, not a determinism artifact.
	var tracer *trace.Tracer
	if tracePath != "" {
		tracer = trace.New(trace.WallClock(), trace.Config{Concurrent: true})
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		go func() {
			<-sig
			if err := writeTrace(tracePath, traceFormat, tracer); err != nil {
				fmt.Fprintln(os.Stderr, "h2serve:", err)
				os.Exit(1)
			}
			fmt.Fprintf(os.Stderr, "h2serve: wrote %d trace events (%s) to %s\n",
				tracer.Len(), traceFormat, tracePath)
			os.Exit(0)
		}()
	}
	srv := &h2sync.Server{
		Config: h2.Config{Tracer: tracer, TraceName: "server"},
		Handler: func(w *h2sync.ResponseWriter, r *h2sync.Request) {
			obj := site.Lookup(r.Path)
			if obj == nil {
				_ = w.WriteHeader(404)
				return
			}
			_ = w.WriteHeader(200, h2.HeaderField{Name: "content-type", Value: obj.Type})
			_, _ = w.Write(site.Body(obj))
		},
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s (%d objects) on %s\n", site.Host, len(site.Objects), l.Addr())
	fmt.Println("objects:")
	for _, o := range site.Objects {
		fmt.Printf("  %-40s %7d bytes\n", o.Path, o.Size)
	}
	return srv.ListenAndServe(l)
}

func writeTrace(path, format string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteFormat(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
