// Command h2serve serves the model website over real TCP with the
// repository's HTTP/2 stack (tlsrec + h2 + goroutine-per-stream server).
// Poke it with examples/realtcp's client or any same-stack client.
//
//	h2serve [-addr 127.0.0.1:8443]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"h2privacy/internal/h2"
	"h2privacy/internal/h2/h2sync"
	"h2privacy/internal/website"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8443", "listen address")
	flag.Parse()
	if err := run(*addr); err != nil {
		fmt.Fprintln(os.Stderr, "h2serve:", err)
		os.Exit(1)
	}
}

func run(addr string) error {
	site := website.ISideWith()
	srv := &h2sync.Server{Handler: func(w *h2sync.ResponseWriter, r *h2sync.Request) {
		obj := site.Lookup(r.Path)
		if obj == nil {
			_ = w.WriteHeader(404)
			return
		}
		_ = w.WriteHeader(200, h2.HeaderField{Name: "content-type", Value: obj.Type})
		_, _ = w.Write(site.Body(obj))
	}}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	fmt.Printf("serving %s (%d objects) on %s\n", site.Host, len(site.Objects), l.Addr())
	fmt.Println("objects:")
	for _, o := range site.Objects {
		fmt.Printf("  %-40s %7d bytes\n", o.Path, o.Size)
	}
	return srv.ListenAndServe(l)
}
