// Command h2serve serves the model website over real TCP with the
// repository's HTTP/2 stack (tlsrec + h2 + goroutine-per-stream server).
// Poke it with examples/realtcp's client or any same-stack client.
//
//	h2serve [-addr 127.0.0.1:8443] [-trace out.json] [-trace-format chrome|jsonl|summary]
//	        [-features] [-features-out features.jsonl] [-debug-addr :9090]
package main

import (
	"flag"
	"fmt"
	"net"
	"os"

	"h2privacy/internal/check"
	"h2privacy/internal/cliutil"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/h2"
	"h2privacy/internal/h2/h2sync"
	"h2privacy/internal/obs"
	"h2privacy/internal/website"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8443", "listen address")
	var tf cliutil.TraceFlags
	tf.RegisterTrace(flag.CommandLine, "the server's h2-layer trace (written on SIGINT)")
	var df cliutil.DebugFlags
	df.RegisterDebug(flag.CommandLine)
	var cf cliutil.CheckFlags
	cf.RegisterCheck(flag.CommandLine)
	var ffl cliutil.FeatureFlags
	ffl.RegisterFeatures(flag.CommandLine)
	flag.Parse()
	if err := run(*addr, tf, df, cf, ffl); err != nil {
		fmt.Fprintln(os.Stderr, "h2serve:", err)
		os.Exit(1)
	}
}

func run(addr string, tf cliutil.TraceFlags, df cliutil.DebugFlags, cf cliutil.CheckFlags, ffl cliutil.FeatureFlags) error {
	site := website.ISideWith()
	// Real-TCP serving has no virtual clock and one goroutine per stream,
	// so the tracer stamps wall time and takes the mutex path. The trace
	// is best-effort diagnostics here, not a determinism artifact.
	// -debug-addr also arms it, so /debug/trace has a ring to serve.
	tracer, err := tf.NewWallTracer(df.Armed())
	if err != nil {
		return err
	}
	// -check arms the server side of the h2 invariant checks (stream-state
	// legality, flow-control accounting, HPACK table sync on our half).
	// Real connections arrive concurrently and sequentially re-register the
	// same endpoint shadow, so this is best-effort diagnostics for one
	// client at a time — the simulated testbed is where checks are exact.
	rec := cf.NewRecorder()
	var ck *check.Checker
	if rec != nil {
		ck = check.New(0, 0, rec)
		ck.Concurrent()
	}
	// -features/-features-out arm flowseq analytics on the server's frames
	// (forced by -debug-addr so /debug/flows serves live). One concurrent
	// analyzer covers the whole process lifetime: real connections share it,
	// stamped with wall time and the listen address as the flow ID. Here the
	// server's connection is the wired endpoint (the testbed wires the
	// browser's), so direction still resolves correctly.
	fcol := ffl.NewCollector(df.Armed())
	var fl *flowseq.Analyzer
	if fcol != nil {
		fl = flowseq.New(0, fcol)
		fl.Concurrent()
		fl.SetClock(flowseq.WallClock())
		fl.SetFlow(addr)
	}
	// Graceful shutdown: the first SIGINT/SIGTERM closes the listener so
	// ListenAndServe unblocks and the exports below run in the main flow
	// (no more exiting from a signal goroutine mid-write); a second signal
	// force-kills through the restored default handler.
	ctx, stop := cliutil.SignalContext()
	defer stop()
	var reg *obs.Registry
	var mRequests *obs.CounterVec
	if df.Armed() {
		reg = obs.NewRegistry()
		obs.PublishTrace(reg, tracer)
		mRequests = reg.CounterVec("h2privacy_server_requests_total",
			"Requests served, by response status.", "status")
	}
	fcol.PublishTo(reg)
	ds, err := df.Serve(reg, tracer, fcol, os.Stderr, "h2serve")
	if err != nil {
		return err
	}
	if ds != nil {
		defer ds.Close()
	}
	srv := &h2sync.Server{
		Config: h2.Config{Tracer: tracer, TraceName: "server", Check: ck, Flows: fl},
		Handler: func(w *h2sync.ResponseWriter, r *h2sync.Request) {
			obj := site.Lookup(r.Path)
			if obj == nil {
				mRequests.With("404").Inc()
				_ = w.WriteHeader(404)
				return
			}
			mRequests.With("200").Inc()
			_ = w.WriteHeader(200, h2.HeaderField{Name: "content-type", Value: obj.Type})
			_, _ = w.Write(site.Body(obj))
		},
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	fmt.Printf("serving %s (%d objects) on %s\n", site.Host, len(site.Objects), l.Addr())
	fmt.Println("objects:")
	for _, o := range site.Objects {
		fmt.Printf("  %-40s %7d bytes\n", o.Path, o.Size)
	}
	serveErr := srv.ListenAndServe(l)
	if ctx.Err() == nil {
		return serveErr
	}
	fmt.Fprintln(os.Stderr, "h2serve: shutting down")
	if err := tf.Export(tracer, os.Stderr, "h2serve"); err != nil {
		return err
	}
	fl.Finalize()
	if err := ffl.Export(fcol, os.Stderr, "h2serve"); err != nil {
		return err
	}
	ck.Finalize()
	if n, err := cf.Report(rec, os.Stderr, "h2serve"); err != nil {
		return err
	} else if n > 0 {
		os.Exit(1)
	}
	return nil
}
