// Command h2attack runs the paper's §V staged attack against the
// simulated survey site and prints a full trace of what the adversary
// observed and inferred.
//
//	h2attack [-seed N] [-jitter1 50ms] [-jitter3 80ms] [-drop 0.8] [-bw 800]
//	         [-scenario NAME] [-adaptive] [-trace out.json]
//	         [-trace-format chrome|jsonl|summary] [-timeline]
//	         [-features] [-features-out features.csv]
//	         [-debug-addr :9090] [-hold 30s]
//	         [-perf] [-perf-out perf.json] [-cpuprofile cpu.pprof] [-memprofile heap.pprof]
//	h2attack -trials 50 [-parallel W]   (aggregate success over seeds N..N+49)
//	h2attack -fleet 100 -budget 1       (shared-bottleneck fleet: pick the target out of 99 decoys)
//	h2attack -scenarios                 (list the fault-scenario catalog)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/capture"
	"h2privacy/internal/check"
	"h2privacy/internal/cliutil"
	"h2privacy/internal/core"
	"h2privacy/internal/experiment"
	"h2privacy/internal/flowseq"
	"h2privacy/internal/metrics"
	"h2privacy/internal/netsim"
	"h2privacy/internal/obs"
	"h2privacy/internal/perf"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

func main() {
	seed := flag.Int64("seed", 1, "trial seed (drives the volunteer's ranking too)")
	trials := flag.Int("trials", 1, "number of trials; >1 sweeps seeds N..N+trials-1 and prints an aggregate summary")
	parallel := flag.Int("parallel", 0, "worker pool for -trials >1 (0 = GOMAXPROCS, 1 = sequential)")
	noPool := flag.Bool("no-pool", false, "disable per-worker trial buffer recycling in sweep mode (diagnostic; output is byte-identical either way)")
	jitter1 := flag.Duration("jitter1", 50*time.Millisecond, "phase-1 per-GET jitter")
	jitter3 := flag.Duration("jitter3", 80*time.Millisecond, "phase-3 per-GET jitter")
	drop := flag.Float64("drop", 0.8, "server→client drop rate during the reset phase")
	bw := flag.Float64("bw", 800, "throttle bandwidth in Mbps")
	scenario := flag.String("scenario", "", "inject a named fault scenario (see -scenarios)")
	listScenarios := flag.Bool("scenarios", false, "list the fault-scenario catalog and exit")
	adaptive := flag.Bool("adaptive", false, "arm the closed-loop driver: watchdogs, retry with escalation, heartbeat re-arm, graceful degradation")
	fleet := flag.Int("fleet", 1, "fleet size N: multiplex N client-server pairs (flow 0 is the target, the rest decoy page loads) over one shared bottleneck")
	budgetK := flag.Int("budget", 1, "with -fleet >1: the adversary's concurrent-interference budget K (0 observes but never touches a flow)")
	pcapPath := flag.String("pcap", "", "export the gateway's capture to this pcap file")
	timeline := flag.Bool("timeline", false, "print the merged event timeline")
	hold := flag.Duration("hold", 0, "keep the process (and -debug-addr endpoints) alive this long after the trial")
	var tf cliutil.TraceFlags
	tf.RegisterTrace(flag.CommandLine, "the trial's cross-layer trace")
	var df cliutil.DebugFlags
	df.RegisterDebug(flag.CommandLine)
	var cf cliutil.CheckFlags
	cf.RegisterCheck(flag.CommandLine)
	var pf cliutil.PerfFlags
	pf.RegisterPerf(flag.CommandLine)
	var ffl cliutil.FeatureFlags
	ffl.RegisterFeatures(flag.CommandLine)
	var sf cliutil.SuperviseFlags
	sf.RegisterSupervise(flag.CommandLine)
	flag.Parse()

	if *listScenarios {
		fmt.Println("fault scenarios:")
		for _, sc := range netsim.Scenarios() {
			fmt.Printf("  %-14s %s\n", sc.Name, sc.Desc)
		}
		return
	}
	if *scenario != "" {
		if _, ok := netsim.LookupScenario(*scenario); !ok {
			fatal(fmt.Errorf("unknown scenario %q (have %s)", *scenario,
				strings.Join(netsim.ScenarioNames(), ", ")))
		}
	}

	plan := adversary.DefaultPlan()
	plan.Phase1Jitter = *jitter1
	plan.Phase3Jitter = *jitter3
	plan.DropRate = *drop
	plan.ThrottleBps = *bw * 1e6
	plan.Adaptive = *adaptive

	// knobs reconstructs the non-default attack parameters for repro
	// commands (check violations and quarantined trials alike).
	knobs := fmt.Sprintf(" -jitter1 %v -jitter3 %v -drop %v -bw %v", *jitter1, *jitter3, *drop, *bw)
	if *scenario != "" {
		knobs += " -scenario " + *scenario
	}
	if *adaptive {
		knobs += " -adaptive"
	}
	if *fleet > 1 {
		knobs += fmt.Sprintf(" -fleet %d -budget %d", *fleet, *budgetK)
	}

	// -fleet >1 switches every trial to the shared-bottleneck topology.
	var fleetCfg *core.FleetConfig
	if *fleet > 1 {
		fleetCfg = &core.FleetConfig{N: *fleet, Budget: *budgetK}
	}

	// -check arms per-layer invariant checking; a violation's repro line
	// names the exact single-trial rerun (the sweep engine keys each trial's
	// checker by that trial's own seed, so -seed N reproduces it alone).
	rec := cf.NewRecorder()
	if rec != nil {
		rec.SetRepro(func(v check.Violation) string {
			return fmt.Sprintf("go run ./cmd/h2attack -check -seed %d%s", v.TrialSeed, knobs)
		})
	}

	// -timeline and -debug-addr also arm the tracer: the trace-derived
	// timeline carries the TCP events the legacy logs never had, and the
	// debug server's /debug/trace endpoint serves the ring live. With a
	// debug server attached, HTTP scrapes race the simulation goroutine,
	// so the tracer takes its mutex path.
	tracer, err := tf.NewTracer(trace.Config{Concurrent: df.Armed()}, *timeline || df.Armed())
	if err != nil {
		fatal(err)
	}

	// -debug-addr arms the metrics registry: the trial's counters and
	// histograms (adversary interventions, phases, retransmits, page-load
	// time) accumulate there and /metrics serves them, mirrored trace
	// counters included.
	var reg *obs.Registry
	if df.Armed() {
		reg = obs.NewRegistry()
		obs.PublishTrace(reg, tracer)
	}
	// -features/-features-out arm flowseq event-sequence analytics; with
	// -debug-addr the collector is forced so /debug/flows serves live burst
	// tables and the flow_* families land in the registry.
	fcol := ffl.NewCollector(df.Armed())
	fcol.PublishTo(reg)
	ds, err := df.Serve(reg, tracer, fcol, os.Stderr, "h2attack")
	if err != nil {
		fatal(err)
	}

	// Any perf flag arms host-side cost attribution (and CPU/heap capture
	// when requested); with -debug-addr the stage histograms also land in
	// the live registry.
	col := pf.NewCollector()
	col.BeginExperiment("attack")
	col.PublishTo(reg)
	if err := pf.StartProfiles(os.Stderr, "h2attack"); err != nil {
		fatal(err)
	}
	finishPerf := func() {
		if err := pf.StopProfiles(os.Stderr, "h2attack"); err != nil {
			fatal(err)
		}
		if err := pf.Report(col, os.Stderr, "h2attack"); err != nil {
			fatal(err)
		}
	}

	// -trials >1 switches to sweep mode: the same attack plan against
	// seeds N..N+trials-1 over the experiment worker pool, reporting
	// aggregate success instead of one trial's play-by-play. -pcap and
	// -timeline are single-trial views and are ignored here; the tracer
	// still records trial 0.
	if *trials > 1 {
		if *pcapPath != "" || *timeline {
			fmt.Fprintln(os.Stderr, "h2attack: -pcap and -timeline apply to single trials; ignoring with -trials >1")
		}
		// First SIGINT starts the cooperative drain: workers stop claiming
		// trials, the trial in flight is interrupted at the scheduler's next
		// poll window, and the completed trials' artifacts export below. A
		// second SIGINT force-kills through the restored default handler.
		ctx, stop := cliutil.SignalContext()
		defer stop()
		quarantined, interrupted, err := runSweep(ctx, *seed, *trials, *parallel, *noPool, plan, *scenario, fleetCfg, knobs, sf, tracer, reg, rec, col, fcol)
		if err != nil {
			fatal(err)
		}
		finishPerf()
		if err := tf.Export(tracer, os.Stdout, "h2attack"); err != nil {
			fatal(err)
		}
		if err := ffl.Export(fcol, os.Stdout, "h2attack"); err != nil {
			fatal(err)
		}
		exitChecks(cf, rec, ds, *hold)
		if interrupted {
			fmt.Fprintln(os.Stderr, "h2attack: interrupted — partial artifacts exported")
			os.Exit(130)
		}
		if code := sf.Exit(quarantined); code != 0 {
			os.Exit(code)
		}
		return
	}

	var ck *check.Checker
	if rec != nil {
		ck = check.New(*seed, 0, rec)
	}
	// Single-trial path: the testbed is assembled by hand (not through
	// core.RunTrial), so the build stage is bracketed here; Run attributes
	// the rest through cfg.Perf. With col nil, pw is the no-op handle.
	var fl *flowseq.Analyzer
	if fcol != nil {
		fl = flowseq.New(0, fcol)
	}
	// The supervision flags apply to the single-trial path too, so a
	// quarantined trial's repro command (-trials 1 -seed S -chaos mode:0
	// -step-budget N) replays the exact failure standalone: the chaos
	// injection fires, the watchdog kills it, and the panic is loud and
	// uncaught — this path is for diagnosis, not salvage.
	chaosFor, err := cliutil.ParseChaosSpec(sf.Chaos)
	if err != nil {
		fatal(err)
	}
	cfg := core.TrialConfig{Seed: *seed, Attack: &plan, Scenario: *scenario, Trace: tracer, Metrics: reg, Check: ck, Flows: fl,
		StepBudget: sf.StepBudget, WallDeadline: sf.TrialDeadline, Fleet: fleetCfg}
	if chaosFor != nil {
		cfg.Chaos = chaosFor(0)
	}
	// A fleet trial runs through core.RunTrial (the topology is assembled
	// there) and reports selection + collateral instead of the single-pair
	// play-by-play.
	if fleetCfg != nil {
		if *pcapPath != "" || *timeline {
			fmt.Fprintln(os.Stderr, "h2attack: -pcap and -timeline apply to single-pair trials; ignoring with -fleet >1")
		}
		fpw := col.Worker()
		ftok := fpw.BeginTrial()
		cfg.Perf = fpw
		res, err := core.RunTrial(cfg)
		fpw.EndTrial(ftok)
		fpw.Close()
		finishPerf()
		if err != nil {
			fatal(err)
		}
		if err := tf.Export(tracer, os.Stdout, "h2attack"); err != nil {
			fatal(err)
		}
		if err := ffl.Export(fcol, os.Stdout, "h2attack"); err != nil {
			fatal(err)
		}
		printFleet(res)
		exitChecks(cf, rec, ds, *hold)
		return
	}
	pw := col.Worker()
	tok := pw.BeginTrial()
	sp := pw.Start(perf.StageBuild)
	cfg.Perf = pw
	tb, err := core.NewTestbed(cfg)
	sp.Stop()
	if err != nil {
		fatal(err)
	}
	if *pcapPath != "" {
		tb.Monitor.EnablePacketLog()
	}
	res := tb.Run()
	pw.EndTrial(tok)
	pw.Close()
	finishPerf()
	if *pcapPath != "" {
		if err := writePcap(*pcapPath, tb); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d observed packets to %s\n\n", len(tb.Monitor.Packets()), *pcapPath)
	}
	if err := tf.Export(tracer, os.Stdout, "h2attack"); err != nil {
		fatal(err)
	}
	if err := ffl.Export(fcol, os.Stdout, "h2attack"); err != nil {
		fatal(err)
	}

	fmt.Println("== attack phases ==")
	for _, pc := range tb.Driver.PhaseLog {
		fmt.Printf("  %-12v %v\n", pc.Time.Round(time.Millisecond), pc.Phase)
	}

	if len(res.FaultLog) > 0 {
		fmt.Printf("\n== injected faults (%s) ==\n", *scenario)
		for _, ft := range res.FaultLog {
			fmt.Printf("  %-12v %-13s %s\n", ft.At.Round(time.Millisecond), ft.Kind, ft.Detail)
		}
	}

	fmt.Println("\n== traffic observed at the gateway ==")
	fmt.Printf("  GET requests counted:      %d\n", res.GETs)
	fmt.Printf("  retransmitted segments:    %d (c→s %d, s→c %d)\n",
		res.MonitorRetransmits, res.RetransC2S, res.RetransS2C)
	fmt.Printf("  adversary drops:           %d packets\n", tb.Controller.Stats().DroppedPkts)
	fmt.Printf("  browser duplicate GETs:    %d, reset cycles: %d\n", res.AppRetries, res.Resets)

	fmt.Println("\n== objects of interest ==")
	fmt.Printf("  %-28s dom=%4.0f%%  identified=%-5t\n", "quiz HTML (9500 B)",
		res.BestDoM[website.TargetID]*100, res.Identified[website.TargetID])
	for k := 0; k < website.PartyCount; k++ {
		obj := res.DisplaySeq[k]
		fmt.Printf("  I%d %-25s dom=%4.0f%%  identified=%-5t  rank-correct=%t\n",
			k+1, strings.TrimPrefix(obj, "emblem-"),
			res.BestDoM[obj]*100, res.Identified[obj], res.SequenceRankCorrect(k))
	}

	if *timeline {
		fmt.Println("\n== timeline ==")
		core.RenderTimeline(os.Stdout, tb.Timeline(res))
	}

	fmt.Println("\n== verdict ==")
	fmt.Printf("  attack outcome:   %s (%d drop attempt(s), %d heartbeat re-arm(s))\n",
		res.Outcome, res.AttackAttempts, tb.Driver.Rearms())
	fmt.Printf("  true ranking:     %s\n", seqString(res.DisplaySeq))
	fmt.Printf("  inferred ranking: %s\n", seqString(res.InferredSeq))
	if res.Broken {
		fmt.Printf("  page load broke: %s\n", res.BrokenReason)
	}

	exitChecks(cf, rec, ds, *hold)
}

// exitChecks prints the invariant-check report (when -check was armed),
// releases the debug server, and exits nonzero on any violation.
func exitChecks(cf cliutil.CheckFlags, rec *check.Recorder, ds *obs.DebugServer, hold time.Duration) {
	n, err := cf.Report(rec, os.Stderr, "h2attack")
	holdAndClose(ds, hold)
	if err != nil {
		fatal(err)
	}
	if n > 0 {
		os.Exit(1)
	}
}

// runSweep is the -trials >1 path: n same-plan trials over the sweep
// engine under trial supervision, aggregated exactly as table2 aggregates
// (HTML identified, ranks correct, broken loads). Returns the quarantined
// trial count and whether the sweep was interrupted (partial results).
func runSweep(ctx context.Context, seed int64, n, workers int, noPool bool, plan adversary.AttackPlan, scenario string, fleetCfg *core.FleetConfig, knobs string, sf cliutil.SuperviseFlags, tracer *trace.Tracer, reg *obs.Registry, rec *check.Recorder, col *perf.Collector, fcol *flowseq.Collector) (quarantined int, interrupted bool, err error) {
	opts := experiment.Options{
		Trials:   n,
		BaseSeed: seed,
		Workers:  workers,
		NoPool:   noPool,
		Trace:    tracer,
		Metrics:  reg,
		Check:    rec,
		Perf:     col,
		Features: fcol,
		Progress: experiment.NewProgress(os.Stderr),
		Ctx:      ctx,
	}
	quar, err := sf.Apply(&opts)
	if err != nil {
		return 0, false, err
	}
	// A quarantined trial's repro replays it standalone: same seed and
	// attack knobs as a one-trial run, with the chaos injection remapped to
	// flat index 0 and — for watchdog kills — the same step budget, so the
	// replay dies as loudly as the original did.
	quar.SetRepro(func(f experiment.TrialFailure) string {
		cmd := fmt.Sprintf("go run ./cmd/h2attack -trials 1 -seed %d%s", f.Seed, knobs)
		if opts.ChaosTrial != nil {
			if m := opts.ChaosTrial(f.Trial); m != core.ChaosNone {
				cmd += fmt.Sprintf(" -chaos %s:0", m)
			}
		}
		if f.Kind == experiment.FailTimeout {
			cmd += fmt.Sprintf(" -step-budget %d", sf.StepBudget)
		}
		return cmd
	})
	opts.Progress.Start("attack", n)
	results, err := opts.Sweep(n, func(t int) core.TrialConfig {
		cfg := core.TrialConfig{Seed: seed + int64(t), Attack: &plan, Scenario: scenario}
		if fleetCfg != nil {
			fc := *fleetCfg
			cfg.Fleet = &fc
		}
		return cfg
	})
	if err != nil {
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return 0, false, err
		}
		interrupted = true
	}
	opts.Progress.Done()
	var html, ranks, allRanks, broken metrics.Counter
	var resets metrics.Sample
	var targetSel metrics.Counter
	var fleetInterventions, decoyBroken, decoyResets int
	outcomes := make(map[adversary.Outcome]int)
	completed := 0
	for _, res := range results {
		if res == nil {
			// Trials an interrupted sweep never ran.
			continue
		}
		completed++
		if fo := res.Fleet; fo != nil {
			targetSel.Observe(fo.TargetSelected)
			fleetInterventions += fo.Interventions
			for _, d := range fo.Decoys {
				if d.Broken {
					decoyBroken++
				}
				decoyResets += d.Resets
			}
		}
		html.Observe(res.ObjectSuccess(website.TargetID))
		all := true
		for k := 0; k < website.PartyCount; k++ {
			ok := res.SequenceRankCorrect(k)
			ranks.Observe(ok)
			all = all && ok
		}
		allRanks.Observe(all)
		broken.Observe(res.Broken)
		resets.Add(float64(res.Resets))
		outcomes[res.Outcome]++
	}
	fmt.Printf("== attack sweep: %d trials, seeds %d..%d", n, seed, seed+int64(n)-1)
	if scenario != "" {
		fmt.Printf(", scenario %s", scenario)
	}
	fmt.Println(" ==")
	if interrupted {
		fmt.Printf("  INTERRUPTED: %d of %d trials completed; aggregates below are partial\n", completed, n)
	}
	if qn := quar.Len(); qn > 0 {
		fmt.Printf("  DEGRADED: %d trial(s) quarantined (counted as broken below); see repro commands in the quarantine report\n", qn)
	}
	if fleetCfg != nil {
		fmt.Printf("  fleet:                     N=%d budget=%d\n", fleetCfg.N, fleetCfg.Budget)
		fmt.Printf("  target selected:           %.0f%%\n", targetSel.Percent())
		fmt.Printf("  interventions/trial:       %.0f\n", float64(fleetInterventions)/float64(completed))
		fmt.Printf("  decoy broken / resets:     %d / %d\n", decoyBroken, decoyResets)
	}
	fmt.Printf("  quiz HTML identified:      %.0f%%\n", html.Percent())
	fmt.Printf("  emblem ranks correct:      %.0f%%\n", ranks.Percent())
	fmt.Printf("  full ranking recovered:    %.0f%%\n", allRanks.Percent())
	fmt.Printf("  broken page loads:         %.0f%%\n", broken.Percent())
	fmt.Printf("  mean reset cycles:         %.1f\n", resets.Mean())
	fmt.Print("  outcomes:                  ")
	var parts []string
	for _, o := range []adversary.Outcome{adversary.OutcomeCleanSlate, adversary.OutcomeRetryCleanSlate,
		adversary.OutcomeDegraded, adversary.OutcomeBroken} {
		if outcomes[o] > 0 {
			parts = append(parts, fmt.Sprintf("%s %d", o, outcomes[o]))
		}
	}
	fmt.Println(strings.Join(parts, ", "))
	qn, err := sf.Report(quar, os.Stderr, "h2attack")
	return qn, interrupted, err
}

// printFleet renders a fleet trial: who the middlebox picked out of the
// crowd, what it did to them, and what happened to everyone else.
func printFleet(res *core.TrialResult) {
	fo := res.Fleet
	fmt.Println("== fleet trial ==")
	fmt.Printf("  topology:          %d flows over one %s bottleneck, budget K=%d\n",
		fo.N, fo.Discipline, fo.Budget)
	fmt.Printf("  selected flows:    %v (target selected: %t, budget peak %d)\n",
		fo.Selected, fo.TargetSelected, fo.BudgetPeak)
	fmt.Printf("  interventions:     %d\n", fo.Interventions)
	fmt.Printf("  bottleneck c→s:    %d pkts / %d bytes (%d queue drops)\n",
		fo.AggC2S.Forwarded, fo.AggC2S.Bytes, fo.AggC2S.DroppedQueue)
	fmt.Printf("  bottleneck s→c:    %d pkts / %d bytes (%d queue drops)\n",
		fo.AggS2C.Forwarded, fo.AggS2C.Bytes, fo.AggS2C.DroppedQueue)

	var loads time.Duration
	var loaded, brokenN, resetsN, targeted int
	for _, d := range fo.Decoys {
		if d.LoadTime > 0 {
			loads += d.LoadTime
			loaded++
		}
		if d.Broken {
			brokenN++
		}
		resetsN += d.Resets
		if d.Targeted {
			targeted++
		}
	}
	fmt.Printf("  decoys:            %d loaded / %d broken / %d reset cycles / %d mis-targeted\n",
		loaded, brokenN, resetsN, targeted)
	if loaded > 0 {
		fmt.Printf("  mean decoy load:   %v\n", (loads / time.Duration(loaded)).Round(time.Millisecond))
	}

	fmt.Println("\n== target verdict ==")
	fmt.Printf("  attack outcome:   %s (%d drop attempt(s))\n", res.Outcome, res.AttackAttempts)
	fmt.Printf("  quiz HTML identified: %t\n", res.Identified[website.TargetID])
	fmt.Printf("  true ranking:     %s\n", seqString(res.DisplaySeq))
	fmt.Printf("  inferred ranking: %s\n", seqString(res.InferredSeq))
	if res.Broken {
		fmt.Printf("  page load broke: %s\n", res.BrokenReason)
	}
}

func holdAndClose(ds *obs.DebugServer, hold time.Duration) {
	if ds == nil {
		return
	}
	if hold > 0 {
		fmt.Fprintf(os.Stderr, "h2attack: holding %v for debug scrapes\n", hold)
		time.Sleep(hold)
	}
	_ = ds.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "h2attack:", err)
	os.Exit(1)
}

func writePcap(path string, tb *core.Testbed) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return capture.WritePcap(f, tb.Monitor.Packets())
}

func seqString(ids []string) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = strings.TrimPrefix(id, "emblem-")
	}
	return strings.Join(out, " > ")
}
