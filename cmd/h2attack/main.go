// Command h2attack runs the paper's §V staged attack against the
// simulated survey site and prints a full trace of what the adversary
// observed and inferred.
//
//	h2attack [-seed N] [-jitter1 50ms] [-jitter3 80ms] [-drop 0.8] [-bw 800]
//	         [-trace out.json] [-trace-format chrome|jsonl|summary] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"h2privacy/internal/adversary"
	"h2privacy/internal/capture"
	"h2privacy/internal/core"
	"h2privacy/internal/trace"
	"h2privacy/internal/website"
)

func main() {
	seed := flag.Int64("seed", 1, "trial seed (drives the volunteer's ranking too)")
	jitter1 := flag.Duration("jitter1", 50*time.Millisecond, "phase-1 per-GET jitter")
	jitter3 := flag.Duration("jitter3", 80*time.Millisecond, "phase-3 per-GET jitter")
	drop := flag.Float64("drop", 0.8, "server→client drop rate during the reset phase")
	bw := flag.Float64("bw", 800, "throttle bandwidth in Mbps")
	pcapPath := flag.String("pcap", "", "export the gateway's capture to this pcap file")
	timeline := flag.Bool("timeline", false, "print the merged event timeline")
	tracePath := flag.String("trace", "", "export the trial's cross-layer trace to this file")
	traceFormat := flag.String("trace-format", trace.FormatChrome,
		"trace export format: "+strings.Join(trace.Formats(), ", "))
	flag.Parse()

	plan := adversary.DefaultPlan()
	plan.Phase1Jitter = *jitter1
	plan.Phase3Jitter = *jitter3
	plan.DropRate = *drop
	plan.ThrottleBps = *bw * 1e6

	// -timeline also arms the tracer: the trace-derived timeline carries
	// the TCP events (RTO fires, recovery) the legacy logs never had.
	var tracer *trace.Tracer
	if *tracePath != "" || *timeline {
		tracer = trace.New(nil, trace.Config{})
	}

	tb, err := core.NewTestbed(core.TrialConfig{Seed: *seed, Attack: &plan, Trace: tracer})
	if err != nil {
		fmt.Fprintln(os.Stderr, "h2attack:", err)
		os.Exit(1)
	}
	if *pcapPath != "" {
		tb.Monitor.EnablePacketLog()
	}
	res := tb.Run()
	if *pcapPath != "" {
		if err := writePcap(*pcapPath, tb); err != nil {
			fmt.Fprintln(os.Stderr, "h2attack:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d observed packets to %s\n\n", len(tb.Monitor.Packets()), *pcapPath)
	}
	if *tracePath != "" {
		if err := writeTrace(*tracePath, *traceFormat, tracer); err != nil {
			fmt.Fprintln(os.Stderr, "h2attack:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %d trace events (%s) to %s\n\n", tracer.Len(), *traceFormat, *tracePath)
	}

	fmt.Println("== attack phases ==")
	for _, pc := range tb.Driver.PhaseLog {
		fmt.Printf("  %-12v %v\n", pc.Time.Round(time.Millisecond), pc.Phase)
	}

	fmt.Println("\n== traffic observed at the gateway ==")
	fmt.Printf("  GET requests counted:      %d\n", res.GETs)
	fmt.Printf("  retransmitted segments:    %d (c→s %d, s→c %d)\n",
		res.MonitorRetransmits, res.RetransC2S, res.RetransS2C)
	fmt.Printf("  adversary drops:           %d packets\n", tb.Controller.Stats().DroppedPkts)
	fmt.Printf("  browser duplicate GETs:    %d, reset cycles: %d\n", res.AppRetries, res.Resets)

	fmt.Println("\n== objects of interest ==")
	fmt.Printf("  %-28s dom=%4.0f%%  identified=%-5t\n", "quiz HTML (9500 B)",
		res.BestDoM[website.TargetID]*100, res.Identified[website.TargetID])
	for k := 0; k < website.PartyCount; k++ {
		obj := res.DisplaySeq[k]
		fmt.Printf("  I%d %-25s dom=%4.0f%%  identified=%-5t  rank-correct=%t\n",
			k+1, strings.TrimPrefix(obj, "emblem-"),
			res.BestDoM[obj]*100, res.Identified[obj], res.SequenceRankCorrect(k))
	}

	if *timeline {
		fmt.Println("\n== timeline ==")
		core.RenderTimeline(os.Stdout, tb.Timeline(res))
	}

	fmt.Println("\n== verdict ==")
	fmt.Printf("  true ranking:     %s\n", seqString(res.DisplaySeq))
	fmt.Printf("  inferred ranking: %s\n", seqString(res.InferredSeq))
	if res.Broken {
		fmt.Printf("  page load broke: %s\n", res.BrokenReason)
	}
}

func writePcap(path string, tb *core.Testbed) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return capture.WritePcap(f, tb.Monitor.Packets())
}

func writeTrace(path, format string, tr *trace.Tracer) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteFormat(f, format); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func seqString(ids []string) string {
	out := make([]string, len(ids))
	for i, id := range ids {
		out[i] = strings.TrimPrefix(id, "emblem-")
	}
	return strings.Join(out, " > ")
}
